//===- Machine.cpp - Simulated multicore machine ---------------------------===//

#include "sim/Machine.h"

#include <algorithm>

using namespace parcae::sim;

ThreadBody::~ThreadBody() = default;

bool Waitable::valid(const Waiter &W) {
  return W.T->State == ThreadState::Blocked && W.T->BlockSeq == W.Seq;
}

void Waitable::notifyAll() {
  std::vector<Waiter> Woken;
  Woken.swap(Waiters);
  for (const Waiter &W : Woken)
    if (valid(W))
      W.T->machine().wake(W.T);
}

void Waitable::notifyOne() {
  // Discard stale entries until a thread still blocked on this
  // registration is found; wake only it. Entries from a satisfied
  // blockAny would otherwise absorb the single notification.
  while (!Waiters.empty()) {
    Waiter W = Waiters.front();
    Waiters.erase(Waiters.begin());
    if (valid(W)) {
      W.T->machine().wake(W.T);
      return;
    }
  }
}

Machine::Machine(Simulator &Sim, unsigned NumCores, MachineConfig Cfg)
    : Sim(Sim), Cfg(Cfg), Cores(NumCores), OnlineCount(NumCores) {
  assert(NumCores > 0 && "machine needs at least one core");
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    Tel->bindClock(Sim);
    TelPid = Tel->processFor("machine");
    for (unsigned I = 0; I < NumCores; ++I)
      Tel->nameThread(TelPid, I, "core " + std::to_string(I));
    CtxSwitchMetric = &Tel->metrics().counter("machine.ctx_switches");
    SliceMetric = &Tel->metrics().counter("machine.slices");
    CoreRateMetric = &Tel->metrics().gauge("machine.core_rate");
    CoreRateMetric->set(1.0);
    TelCoreSpan.assign(NumCores, nullptr);
  }
#endif
}

Machine::~Machine() {
  // Surface the event-core tier split (ring/wheel/heap hits, spills) in
  // the metrics dump. Done here, not in TraceFile's destructor: the
  // machine is destroyed while its simulator is still alive, whereas the
  // recorder outlives both.
  if (Tel)
    Tel->captureSimQueueMetrics(Sim);
}

SimThread *Machine::spawn(std::string Name, std::unique_ptr<ThreadBody> Body) {
  assert(Body && "spawn() requires a body");
  auto T = std::unique_ptr<SimThread>(
      new SimThread(*this, Threads.size(), std::move(Name), std::move(Body)));
  SimThread *Raw = T.get();
  Threads.push_back(std::move(T));
  ++AliveCount;
  ReadyQueue.push_back(Raw);
  dispatch();
  return Raw;
}

SimTime Machine::busyCoreTime() const {
  // Fold in the interval since the last busy-count change.
  BusyIntegral += static_cast<SimTime>(BusyCount) *
                  (Sim.now() - BusyIntegralLast);
  BusyIntegralLast = Sim.now();
  return BusyIntegral;
}

void Machine::setBusyCount(unsigned N) {
  busyCoreTime(); // settle the integral at the old count
  BusyCount = N;
  if (OnBusyCountChange)
    OnBusyCountChange(N);
}

void Machine::wake(SimThread *T) {
  if (T->State != ThreadState::Blocked)
    return; // already woken through another waitable
  T->State = ThreadState::Ready;
  ReadyQueue.push_back(T);
  dispatch();
}

void Machine::dispatch() {
  if (InDispatch) {
    DispatchPending = true;
    return;
  }
  InDispatch = true;
  do {
    DispatchPending = false;
    tryAssign();
  } while (DispatchPending);
  InDispatch = false;
  // The busy count is sampled here, once it has settled: the transient
  // dip-and-recover of an end-slice/start-slice pair at one timestamp
  // would otherwise flood the trace with a counter event per quantum.
  if (Tel)
    emitBusySample();
}

void Machine::emitBusySample() {
  // One sample per gate interval of virtual time: workers blocking
  // between iterations make the settled count oscillate far faster than
  // any viewer needs. A suppressed change arms a one-shot flush, so the
  // series still lands on the final value once the burst passes.
  static constexpr SimTime Gate = 20 * USec;
  if (BusyCount == TelBusyEmitted)
    return;
  SimTime Now = Sim.now();
  if (TelBusyEmitted != ~0u && Now < TelBusyLastTs + Gate) {
    if (!TelBusyFlushArmed) {
      TelBusyFlushArmed = true;
      Sim.schedule(TelBusyLastTs + Gate - Now, [this] {
        TelBusyFlushArmed = false;
        emitBusySample();
      });
    }
    return;
  }
  TelBusyEmitted = BusyCount;
  TelBusyLastTs = Now;
  Tel->counter(TelPid, 0, "machine", "busy_cores", BusyCount);
}

void Machine::tryAssign() {
  while (!ReadyQueue.empty()) {
    SimThread *T = ReadyQueue.front();
    // Threads terminated while queued are dropped lazily here.
    if (T->State == ThreadState::Finished) {
      ReadyQueue.pop_front();
      continue;
    }
    // Gang reservations keep some idle cores unavailable; offlined cores
    // no longer count as capacity at all.
    if (BusyCount >= OnlineCount)
      return;
    // Find a free core, preferring the one the thread last ran on so that
    // a thread running alone never pays switch costs. With slow-core
    // avoidance on, a core observed running dilated is last-resort: any
    // healthy core outranks it (even at the price of a context switch),
    // and affinity only breaks ties within each class. Penalized cores
    // still run work when nothing else is free — placement stays
    // work-conserving, and using them is also what re-probes their rate.
    int Free = -1;
    int FreeRank = 4;
    for (unsigned I = 0; I < Cores.size(); ++I) {
      if (Cores[I].Running || Cores[I].Offline)
        continue;
      bool Affine = Cores[I].LastThread == T;
      int Rank = (Cfg.SlowCoreAvoidance && corePenalized(I))
                     ? (Affine ? 2 : 3)
                     : (Affine ? 0 : 1);
      if (Rank < FreeRank) {
        FreeRank = Rank;
        Free = static_cast<int>(I);
        if (Rank == 0)
          break;
      }
    }
    if (Free < 0)
      return; // all cores busy
    ReadyQueue.pop_front();
    startSlice(static_cast<unsigned>(Free), T);
  }
}

void Machine::startSlice(unsigned CoreIdx, SimThread *T) {
  Core &C = Cores[CoreIdx];
  assert(!C.Running && "core already busy");
  assert(T->State == ThreadState::Ready && "thread not ready");

  // A gang compute that previously failed to reserve helpers is retried
  // before asking the body for anything new.
  if (T->PendingGang > 0 && T->RemainingBurst == 0) {
    if (!tryReserveGang(T, T->PendingGang, T->PendingGangCycles))
      return;
    T->PendingGang = 0;
  }

  // If the previous burst is exhausted, ask the body for the next action.
  // Zero-cost computes are folded into the loop; a livelock guard catches
  // bodies that spin without consuming time.
  unsigned Spins = 0;
  while (T->RemainingBurst == 0) {
    Action A = T->Body->resume(*this, *T);
    switch (A.K) {
    case Action::Kind::Compute:
      if (A.Gang > 1) {
        if (!tryReserveGang(T, A.Gang, A.Cycles)) {
          T->PendingGang = A.Gang;
          T->PendingGangCycles = A.Cycles;
          return;
        }
      } else {
        T->RemainingBurst = A.Cycles;
      }
      if (A.Cycles == 0 && ++Spins > 1000000)
        assert(false && "thread body livelock: endless zero-cost computes");
      break;
    case Action::Kind::Block:
      assert(A.W && "block action requires a waitable");
      T->State = ThreadState::Blocked;
      // A thread may sit in several waiter lists; wake() is idempotent and
      // entries from earlier block epochs are discarded when their
      // waitable next notifies.
      ++T->BlockSeq;
      A.W->Waiters.push_back({T, T->BlockSeq});
      if (A.W2)
        A.W2->Waiters.push_back({T, T->BlockSeq});
      return; // core stays free; caller keeps assigning
    case Action::Kind::Finish:
      T->State = ThreadState::Finished;
      assert(AliveCount > 0);
      --AliveCount;
      if (Tel) {
        // Close the thread's occupancy span; it will never run again.
        for (unsigned I = 0; I < TelCoreSpan.size(); ++I)
          if (TelCoreSpan[I] == T) {
            Tel->end(TelPid, I, "core", T->name());
            TelCoreSpan[I] = nullptr;
          }
      }
      T->ExitEvent.notifyAll();
      return;
    }
  }

  T->State = ThreadState::Running;
  T->CoreIdx = static_cast<int>(CoreIdx);
  C.Running = T;
  setBusyCount(BusyCount + 1);

  SimTime Overhead = (C.LastThread && C.LastThread != T)
                         ? Cfg.CtxSwitchCost + Cfg.CacheRefillCost
                         : 0;
  SimTime SliceLen = std::min(T->RemainingBurst, Cfg.Quantum);
  // A straggling core stretches the slice's wall time: every work cycle
  // takes Dilation cycles, though only SliceLen cycles of work complete.
  // The factor is sampled where the work begins (after the switch
  // overhead) and the slice is clamped to the next straggler-window
  // boundary, so each slice runs under one constant factor and a window
  // opening or closing mid-slice takes effect on time (piecewise-exact),
  // the same way offline/domain events already bound slices.
  SimTime WorkStart = Sim.now() + Overhead;
  double Dilation = Plan ? Plan->dilation(CoreIdx, WorkStart) : 1.0;
  if (Plan)
    if (SimTime Boundary = Plan->nextDilationBoundary(CoreIdx, WorkStart)) {
      SimTime Span = Boundary - WorkStart;
      SimTime MaxWork =
          Dilation > 1.0
              ? static_cast<SimTime>(static_cast<double>(Span) / Dilation)
              : Span;
      // Never clamp to zero work: a boundary nearer than one dilated
      // cycle still admits one cycle, bounding the error at one cycle
      // while guaranteeing progress.
      SliceLen = std::min(SliceLen, std::max<SimTime>(MaxWork, 1));
    }
  // The quantum timer is a *wall-clock* preemption: it does not slow
  // down with a dilated core, so a slice never occupies a straggling
  // core for more than about one quantum of wall time. This is what
  // lets the rate sensor re-sample (and the dispatcher route around) a
  // slow core during a long straggler window rather than only at its
  // close.
  if (Dilation > 1.0) {
    SimTime MaxWork =
        static_cast<SimTime>(static_cast<double>(Cfg.Quantum) / Dilation);
    SliceLen = std::min(SliceLen, std::max<SimTime>(MaxWork, 1));
  }
  SimTime Wall =
      Dilation > 1.0
          ? static_cast<SimTime>(static_cast<double>(SliceLen) * Dilation)
          : SliceLen;
  C.SliceAt = Sim.now();
  C.SliceOverhead = Overhead;
  C.SliceWork = SliceLen;
  C.SliceDilation = Dilation;
  std::uint64_t Epoch = ++C.Epoch;
  if (Tel) {
    SliceMetric->add();
    if (Overhead > 0) {
      CtxSwitchMetric->add();
      Tel->instant(TelPid, CoreIdx, "machine", "ctx_switch",
                   {telemetry::TraceArg::num(
                       "cost_us", toSeconds(Overhead) * 1e6)});
    }
    // One span per occupancy epoch: back-to-back slices of the same
    // thread on the same core continue the open span.
    if (TelCoreSpan[CoreIdx] != T) {
      if (TelCoreSpan[CoreIdx])
        Tel->end(TelPid, CoreIdx, "core", TelCoreSpan[CoreIdx]->name());
      Tel->begin(TelPid, CoreIdx, "core", T->name());
      TelCoreSpan[CoreIdx] = T;
    }
  }
  Sim.schedule(Overhead + Wall, [this, CoreIdx, T, SliceLen, Epoch] {
    endSlice(CoreIdx, T, SliceLen, Epoch);
  });
}

/// Reserves Gang-1 helper cores and arms the burst, or blocks the thread
/// on GangAvail. Returns true on success.
bool Machine::tryReserveGang(SimThread *T, unsigned Gang, SimTime Cycles) {
  assert(Gang <= Cores.size() && "gang larger than the machine");
  assert(Cycles > 0 && "gang computes must consume time");
  if (BusyCount + Gang > Cores.size()) {
    T->State = ThreadState::Blocked;
    ++T->BlockSeq;
    GangAvail.Waiters.push_back({T, T->BlockSeq});
    return false;
  }
  Reserved += Gang - 1;
  T->GangHold = Gang - 1;
  setBusyCount(BusyCount + (Gang - 1));
  T->RemainingBurst = Cycles;
  return true;
}

void Machine::endSlice(unsigned CoreIdx, SimThread *T, SimTime SliceLen,
                       std::uint64_t Epoch) {
  Core &C = Cores[CoreIdx];
  if (C.Epoch != Epoch)
    return; // slice cancelled: its thread was stranded or terminated
  assert(C.Running == T && "slice ended on wrong core");
  noteSliceRate(CoreIdx);
  C.Running = nullptr;
  C.LastThread = T;
  setBusyCount(BusyCount - 1);
  // Any freed capacity may unblock a waiting gang.
  if (GangAvail.hasWaiters())
    GangAvail.notifyAll();

  assert(T->RemainingBurst >= SliceLen);
  T->RemainingBurst -= SliceLen;
  T->BusyTime += SliceLen * (1 + T->GangHold);
  if (T->RemainingBurst == 0 && T->GangHold > 0)
    releaseGangHold(T);
  T->State = ThreadState::Ready;
  T->CoreIdx = -1;
  ReadyQueue.push_back(T);
  dispatch();
}

void Machine::noteSliceRate(unsigned CoreIdx) {
  Core &C = Cores[CoreIdx];
  SimTime Now = Sim.now();
  // One slice contributes its wall time's worth of evidence, saturating
  // at a full replacement after RateTau of continuous observation.
  SimTime Wall = static_cast<SimTime>(static_cast<double>(C.SliceWork) *
                                      C.SliceDilation);
  double Alpha =
      Cfg.RateTau > 0 ? std::min(1.0, static_cast<double>(Wall) /
                                          static_cast<double>(Cfg.RateTau))
                      : 1.0;
  double Prev = Now - C.RateSampledAt > Cfg.RateSampleTtl ? 1.0 : C.Rate;
  C.Rate = Prev + Alpha * (1.0 / C.SliceDilation - Prev);
  C.RateSampledAt = Now;
  if (!Cfg.SlowCoreAvoidance)
    return;
  bool Pen = C.Rate < Cfg.SlowCoreThreshold;
  if (Pen == C.PenalizedMark)
    return;
  C.PenalizedMark = Pen;
  if (Tel) {
    CoreRateMetric->set(minCoreRate());
    Tel->metrics()
        .counter(Pen ? "machine.cores_penalized" : "machine.cores_recovered")
        .add();
    Tel->instant(TelPid, CoreIdx, "machine",
                 Pen ? "core_penalized" : "core_recovered",
                 {telemetry::TraceArg::num("rate", C.Rate),
                  telemetry::TraceArg::num("penalized",
                                           static_cast<double>(
                                               penalizedCores()))});
  }
}

double Machine::coreRate(unsigned CoreIdx) const {
  assert(CoreIdx < Cores.size());
  const Core &C = Cores[CoreIdx];
  // A stale estimate reads as nominal: an idle core cannot re-measure
  // itself, so after the TTL it gets the benefit of the doubt.
  if (Sim.now() - C.RateSampledAt > Cfg.RateSampleTtl)
    return 1.0;
  return C.Rate;
}

bool Machine::corePenalized(unsigned CoreIdx) const {
  if (!Cfg.SlowCoreAvoidance || Cores[CoreIdx].Offline)
    return false;
  if (coreRate(CoreIdx) < Cfg.SlowCoreThreshold)
    return true;
  // Live evidence: a running slice that has overstayed its healthy-core
  // schedule (overhead + work; wall == work at nominal speed) is lagging
  // *right now*, before any completed slice can feed the EWMA. This is
  // what lets speculation convict the core its laggard is stuck on — by
  // definition that core is mid-slice, so a completed-slice-only sensor
  // would learn of the dilation only after the laggard escapes.
  const Core &C = Cores[CoreIdx];
  if (C.Running) {
    SimTime Expect = C.SliceOverhead + C.SliceWork;
    SimTime Sofar = Sim.now() - C.SliceAt;
    if (Expect > 0 && Sofar > Expect &&
        static_cast<double>(Expect) / static_cast<double>(Sofar) <
            Cfg.SlowCoreThreshold)
      return true;
  }
  return false;
}

unsigned Machine::penalizedCores() const {
  if (!Cfg.SlowCoreAvoidance)
    return 0;
  unsigned N = 0;
  for (unsigned I = 0; I < Cores.size(); ++I)
    if (corePenalized(I))
      ++N;
  return N;
}

double Machine::minCoreRate() const {
  double Min = 1.0;
  for (unsigned I = 0; I < Cores.size(); ++I)
    if (!Cores[I].Offline)
      Min = std::min(Min, coreRate(I));
  return Min;
}

void Machine::releaseGangHold(SimThread *T) {
  assert(T->GangHold > 0);
  assert(Reserved >= T->GangHold);
  Reserved -= T->GangHold;
  setBusyCount(BusyCount - T->GangHold);
  T->GangHold = 0;
  GangAvail.notifyAll();
}

void Machine::installFaultPlan(FaultPlan NewPlan) {
  assert(!Plan && "a fault plan is already installed");
  Plan = std::move(NewPlan);
  for (const OfflineFault &F : Plan->offlines()) {
    assert(F.Core < Cores.size() && "offline fault names a missing core");
    Sim.scheduleAt(F.At, [this, Core = F.Core] { offlineCore(Core); });
  }
  for (const FailureDomainEvent &D : Plan->domains()) {
    for (unsigned Core : D.Cores) {
      (void)Core;
      assert(Core < Cores.size() && "domain names a missing core");
    }
    Sim.scheduleAt(D.At, [this, &D] { offlineDomain(D); });
    if (D.Warning > 0) {
      SimTime WarnAt = D.Warning >= D.At ? 0 : D.At - D.Warning;
      Sim.scheduleAt(WarnAt, [this, &D] {
        if (Tel) {
          Tel->metrics().counter("machine.faults.domain_warnings").add();
          Tel->instant(TelPid, 0, "machine", "fault_domain_warning",
                       {telemetry::TraceArg::str("domain", D.Name),
                        telemetry::TraceArg::num(
                            "cores", static_cast<double>(D.Cores.size())),
                        telemetry::TraceArg::num(
                            "lead_us", toSeconds(D.Warning) * 1e6)});
        }
        for (const auto &L : DomainWarningListeners)
          L(D);
      });
    }
    if (D.Downtime > 0)
      Sim.scheduleAt(D.At + D.Downtime, [this, &D] {
        for (unsigned Core : D.Cores)
          onlineCore(Core);
      });
  }
  for (const RepairEvent &R : Plan->repairs()) {
    assert(R.Core < Cores.size() && "repair names a missing core");
    Sim.scheduleAt(R.At, [this, Core = R.Core] { onlineCore(Core); });
  }
  if (Tel)
    for (const StragglerFault &S : Plan->stragglers()) {
      assert(S.Core < Cores.size() && "straggler names a missing core");
      Sim.scheduleAt(S.At, [this, S] {
        Tel->instant(TelPid, S.Core, "machine", "fault_straggler",
                     {telemetry::TraceArg::num("dilation", S.Dilation),
                      telemetry::TraceArg::num(
                          "duration_us", toSeconds(S.Duration) * 1e6)});
      });
    }
}

void Machine::offlineCore(unsigned CoreIdx) {
  assert(CoreIdx < Cores.size());
  Core &C = Cores[CoreIdx];
  if (C.Offline)
    return;
  assert(OnlineCount > 1 && "cannot offline the last core");
  C.Offline = true;
  --OnlineCount;
  LastOfflineAt = Sim.now();
  if (SimThread *T = C.Running) {
    // Credit the work the interrupted slice completed before the failure;
    // the rest of the burst resumes after rescue.
    SimTime Ran = Sim.now() - C.SliceAt;
    SimTime Done = 0;
    if (Ran > C.SliceOverhead)
      Done = std::min(
          static_cast<SimTime>(static_cast<double>(Ran - C.SliceOverhead) /
                               C.SliceDilation),
          C.SliceWork);
    assert(T->RemainingBurst >= Done);
    T->RemainingBurst -= Done;
    T->BusyTime += Done * (1 + T->GangHold);
    ++C.Epoch; // cancel the in-flight endSlice
    C.Running = nullptr;
    C.LastThread = T;
    T->State = ThreadState::Stranded;
    T->CoreIdx = -1;
    ++StrandedCount;
    // Gang helpers stay reserved: the stranded burst still owns them and
    // completes on rescue.
    setBusyCount(BusyCount - 1);
  }
  if (Tel) {
    Tel->metrics().counter("machine.faults.offline").add();
    Tel->instant(TelPid, CoreIdx, "machine", "fault_offline",
                 {telemetry::TraceArg::num("online", OnlineCount),
                  telemetry::TraceArg::num("stranded", StrandedCount)});
    if (TelCoreSpan[CoreIdx]) {
      Tel->end(TelPid, CoreIdx, "core", TelCoreSpan[CoreIdx]->name());
      TelCoreSpan[CoreIdx] = nullptr;
    }
    emitCapacitySample();
  }
  if (OnTopologyChange)
    OnTopologyChange(OnlineCount);
  dispatch();
}

void Machine::offlineDomain(const FailureDomainEvent &D) {
  if (Tel)
    Tel->instant(TelPid, 0, "machine", "fault_domain",
                 {telemetry::TraceArg::str("domain", D.Name),
                  telemetry::TraceArg::num(
                      "cores", static_cast<double>(D.Cores.size()))});
  for (unsigned Core : D.Cores)
    offlineCore(Core);
}

void Machine::onlineCore(unsigned CoreIdx) {
  assert(CoreIdx < Cores.size());
  Core &C = Cores[CoreIdx];
  if (!C.Offline)
    return; // never failed (or already repaired): nothing to re-admit
  C.Offline = false;
  ++OnlineCount;
  ++RepairedCount;
  LastOnlineAt = Sim.now();
  if (Tel) {
    Tel->metrics().counter("machine.repairs").add();
    Tel->instant(TelPid, CoreIdx, "machine", "repair_online",
                 {telemetry::TraceArg::num("online", OnlineCount)});
    emitCapacitySample();
  }
  if (OnTopologyChange)
    OnTopologyChange(OnlineCount);
  // Ready threads queued behind the reduced capacity can use the core now.
  dispatch();
}

void Machine::emitCapacitySample() {
  Tel->counter(TelPid, 0, "machine", "online_cores", OnlineCount);
}

unsigned Machine::rescueStranded() {
  std::vector<SimThread *> All;
  for (const auto &TP : Threads)
    if (TP->State == ThreadState::Stranded)
      All.push_back(TP.get());
  unsigned N = rescueStranded(All);
  assert(StrandedCount == 0 && "stranded-count bookkeeping diverged");
  return N;
}

unsigned Machine::rescueStranded(const std::vector<SimThread *> &Targets) {
  unsigned N = 0;
  for (SimThread *T : Targets) {
    if (!T || T->State != ThreadState::Stranded)
      continue;
    T->State = ThreadState::Ready;
    ReadyQueue.push_back(T);
    // Decrement per thread, not wholesale: a partial rescue must leave the
    // count of the threads it never touched intact.
    assert(StrandedCount > 0 && "stranded-count bookkeeping diverged");
    --StrandedCount;
    ++N;
  }
  if (N > 0) {
    if (Tel) {
      Tel->metrics().counter("machine.faults.rescued").add(N);
      Tel->instant(TelPid, 0, "machine", "rescue",
                   {telemetry::TraceArg::num("threads", N),
                    telemetry::TraceArg::num("still_stranded", StrandedCount)});
    }
    dispatch();
  }
  return N;
}

bool Machine::takeWedge(const std::string &Task, std::uint64_t Seq) {
  if (!Plan || !Plan->wedgeAt(Task, Seq))
    return false;
  if (!FiredWedges.insert({Task, Seq}).second)
    return false; // already fired once: the retry runs normally
  if (Tel) {
    Tel->metrics().counter("machine.faults.wedges").add();
    Tel->instant(TelPid, 0, "machine", "fault_wedge",
                 {telemetry::TraceArg::str("task", Task),
                  telemetry::TraceArg::num("seq", static_cast<double>(Seq))});
  }
  return true;
}

void Machine::terminate(SimThread *T) {
  if (T->State == ThreadState::Finished)
    return;
  switch (T->State) {
  case ThreadState::Running: {
    Core &C = Cores[static_cast<unsigned>(T->CoreIdx)];
    assert(C.Running == T);
    ++C.Epoch; // cancel the in-flight endSlice
    C.Running = nullptr;
    C.LastThread = T;
    setBusyCount(BusyCount - 1);
    break;
  }
  case ThreadState::Stranded:
    assert(StrandedCount > 0);
    --StrandedCount;
    break;
  case ThreadState::Ready:
    // Still in the ready queue; tryAssign drops it once Finished.
    break;
  case ThreadState::Blocked:
    // Stale waiter-list entries are discarded when the waitable next
    // notifies (wake() ignores non-Blocked threads).
    break;
  case ThreadState::Finished:
    break;
  }
  if (T->GangHold > 0)
    releaseGangHold(T);
  T->State = ThreadState::Finished;
  T->RemainingBurst = 0;
  T->PendingGang = 0;
  T->CoreIdx = -1;
  assert(AliveCount > 0);
  --AliveCount;
  if (Tel)
    for (unsigned I = 0; I < TelCoreSpan.size(); ++I)
      if (TelCoreSpan[I] == T) {
        Tel->end(TelPid, I, "core", T->name());
        TelCoreSpan[I] = nullptr;
      }
  T->ExitEvent.notifyAll();
  if (GangAvail.hasWaiters())
    GangAvail.notifyAll();
  dispatch();
}
