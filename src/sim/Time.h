//===- Time.h - Virtual time for the multicore simulator -------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual-time definitions. The simulator models a nominal 1 GHz core, so
/// one cycle equals one nanosecond and all costs are expressed in the same
/// unit the paper's rdtsc-based hooks measure in.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_TIME_H
#define PARCAE_SIM_TIME_H

#include <cstdint>

namespace parcae::sim {

/// Virtual time in nanoseconds (equivalently, cycles at 1 GHz).
using SimTime = std::uint64_t;

constexpr SimTime NSec = 1;
constexpr SimTime USec = 1000 * NSec;
constexpr SimTime MSec = 1000 * USec;
constexpr SimTime Sec = 1000 * MSec;

/// Converts virtual time to seconds as a double (for reporting).
inline double toSeconds(SimTime T) { return static_cast<double>(T) / 1e9; }

/// Converts seconds to virtual time.
inline SimTime fromSeconds(double S) {
  return static_cast<SimTime>(S * 1e9 + 0.5);
}

} // namespace parcae::sim

#endif // PARCAE_SIM_TIME_H
