//===- Faults.cpp - Deterministic fault injection for the machine ----------===//

#include "sim/Faults.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace parcae::sim;

void FaultPlan::addStraggler(unsigned Core, SimTime At, SimTime Duration,
                             double Dilation) {
  assert(Dilation >= 1.0 && "stragglers run slower, not faster");
  assert(Duration > 0 && "straggler window must be non-empty");
  Stragglers.push_back({Core, At, Duration, Dilation});
}

void FaultPlan::addOffline(unsigned Core, SimTime At) {
  Offlines.push_back({Core, At});
}

void FaultPlan::addDomain(std::string Name, std::vector<unsigned> Cores,
                          SimTime At, SimTime Downtime, SimTime Warning) {
  assert(!Cores.empty() && "a failure domain holds at least one core");
  Domains.push_back({std::move(Name), std::move(Cores), At, Downtime, Warning});
}

void FaultPlan::addRepair(unsigned Core, SimTime At) {
  Repairs.push_back({Core, At});
}

void FaultPlan::scatterDomain(std::uint64_t Seed, std::string Name,
                              unsigned NumCores, unsigned Size, SimTime At,
                              SimTime Downtime, SimTime Warning) {
  assert(Size >= 1 && Size <= NumCores && "domain size must fit the machine");
  // Partial Fisher-Yates over the core indices: the first Size entries are
  // a uniform distinct sample, fully determined by the seed.
  std::vector<unsigned> All(NumCores);
  for (unsigned I = 0; I < NumCores; ++I)
    All[I] = I;
  Rng R(Seed);
  for (unsigned I = 0; I < Size; ++I) {
    unsigned J = I + static_cast<unsigned>(R.nextBelow(NumCores - I));
    std::swap(All[I], All[J]);
  }
  All.resize(Size);
  addDomain(std::move(Name), std::move(All), At, Downtime, Warning);
}

std::size_t FaultPlan::numOfflineEvents() const {
  std::size_t N = Offlines.size();
  for (const FailureDomainEvent &D : Domains)
    N += D.Cores.size();
  return N;
}

void FaultPlan::addTransient(std::string Task, std::uint64_t Seq,
                             unsigned FailCount) {
  assert(FailCount >= 1 && "a transient fault fails at least once");
  Transients[{std::move(Task), Seq}] = FailCount;
}

void FaultPlan::addWedge(std::string Task, std::uint64_t Seq) {
  Wedges.push_back({std::move(Task), Seq});
}

void FaultPlan::scatterTransients(std::uint64_t Seed, const std::string &Task,
                                  std::uint64_t SeqBegin, std::uint64_t SeqEnd,
                                  unsigned Count, unsigned MaxFailCount) {
  assert(SeqBegin < SeqEnd && "empty scatter range");
  assert(MaxFailCount >= 1);
  Rng R(Seed);
  for (unsigned I = 0; I < Count; ++I) {
    std::uint64_t Seq = SeqBegin + R.nextBelow(SeqEnd - SeqBegin);
    unsigned Fails = 1 + static_cast<unsigned>(R.nextBelow(MaxFailCount));
    addTransient(Task, Seq, Fails);
  }
}

void FaultPlan::scatterStragglers(std::uint64_t Seed, unsigned NumCores,
                                  unsigned Count, SimTime From, SimTime To,
                                  SimTime Duration, double MinDilation,
                                  double MaxDilation) {
  assert(NumCores > 0 && "scatter needs at least one core");
  assert(From < To && "empty scatter window");
  assert(MinDilation >= 1.0 && MinDilation <= MaxDilation);
  Rng R(Seed);
  for (unsigned I = 0; I < Count; ++I) {
    unsigned Core = static_cast<unsigned>(R.nextBelow(NumCores));
    SimTime At = From + R.nextBelow(To - From);
    double Dilation = R.nextRealInRange(MinDilation, MaxDilation);
    addStraggler(Core, At, Duration, Dilation);
  }
}

double FaultPlan::dilation(unsigned Core, SimTime Now) const {
  // Overlapping windows do not compound: the core runs at the worst active
  // dilation (two 4x windows give 4x, not 16x).
  double F = 1.0;
  for (const StragglerFault &S : Stragglers)
    if (S.Core == Core && Now >= S.At && Now < S.At + S.Duration)
      F = std::max(F, S.Dilation);
  return F;
}

SimTime FaultPlan::nextDilationBoundary(unsigned Core, SimTime Now) const {
  SimTime Next = 0;
  for (const StragglerFault &S : Stragglers) {
    if (S.Core != Core)
      continue;
    for (SimTime Edge : {S.At, S.At + S.Duration})
      if (Edge > Now && (Next == 0 || Edge < Next))
        Next = Edge;
  }
  return Next;
}

unsigned FaultPlan::transientFailCount(const std::string &Task,
                                       std::uint64_t Seq) const {
  auto It = Transients.find({Task, Seq});
  return It == Transients.end() ? 0 : It->second;
}

bool FaultPlan::wedgeAt(const std::string &Task, std::uint64_t Seq) const {
  for (const WedgeFault &W : Wedges)
    if (W.Seq == Seq && W.Task == Task)
      return true;
  return false;
}
