//===- EventFn.h - Small-buffer-optimized event callback --------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A move-only callable wrapper for simulator events. Unlike
/// std::function, callables up to InlineSize bytes are stored inline, so
/// the event hot path of the discrete-event core performs no heap
/// allocation per scheduled event. Larger callables (rare: a capture of
/// more than a few pointers) fall back to a single heap cell.
///
/// The wrapper is single-shot in spirit — the simulator invokes each
/// event exactly once — but invocation does not consume it, so tests can
/// call twice if they want to.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SIM_EVENTFN_H
#define PARCAE_SIM_EVENTFN_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace parcae::sim {

/// Move-only `void()` callable with small-buffer optimization.
class EventFn {
public:
  /// Inline storage: enough for a lambda capturing half a dozen words,
  /// which covers every event the runtime schedules.
  static constexpr std::size_t InlineSize = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F> &>>>
  EventFn(F &&Fn) { // NOLINT: implicit by design, mirrors std::function
    init(std::forward<F>(Fn));
  }

  /// Replaces the held callable, constructing the new one in place — the
  /// simulator's slab uses this to build events directly in their slot,
  /// with no intermediate EventFn move. Accepts an EventFn too (plain
  /// move assignment) so forwarding call sites need no special case.
  template <typename F> void assign(F &&Fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      *this = std::forward<F>(Fn);
    } else {
      reset();
      init(std::forward<F>(Fn));
    }
  }

  EventFn(EventFn &&O) noexcept { moveFrom(O); }

  EventFn &operator=(EventFn &&O) noexcept {
    if (this != &O) {
      reset();
      moveFrom(O);
    }
    return *this;
  }

  EventFn(const EventFn &) = delete;
  EventFn &operator=(const EventFn &) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return VT != nullptr; }

  void operator()() {
    VT->Invoke(S);
  }

  /// Destroys the held callable (if any); the wrapper becomes empty.
  void reset() noexcept {
    if (VT) {
      if (VT->Dtor) // null for trivially destructible inline callables
        VT->Dtor(S);
      VT = nullptr;
    }
  }

  /// Scratch word over the (unused) storage of an EMPTY wrapper. The
  /// simulator's slab threads its free list through dead slots with
  /// this instead of keeping a side stack.
  std::uint32_t &scratch() noexcept {
    return *reinterpret_cast<std::uint32_t *>(S.Buf);
  }

private:
  union Storage {
    alignas(alignof(std::max_align_t)) unsigned char Buf[InlineSize];
    void *Ptr;
  };

  struct VTable {
    void (*Invoke)(Storage &);
    /// Move-constructs Dst from Src and destroys Src.
    void (*Relocate)(Storage &Dst, Storage &Src) noexcept;
    /// Null when destruction is a no-op (trivially destructible inline
    /// callable): the event hot loop then skips the indirect call.
    void (*Dtor)(Storage &) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline =
      sizeof(D) <= InlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D> struct OpsInline {
    static D *get(Storage &St) {
      return std::launder(reinterpret_cast<D *>(St.Buf));
    }
    static void invoke(Storage &St) { (*get(St))(); }
    static void relocate(Storage &Dst, Storage &Src) noexcept {
      ::new (static_cast<void *>(Dst.Buf)) D(std::move(*get(Src)));
      get(Src)->~D();
    }
    static void dtor(Storage &St) noexcept { get(St)->~D(); }
    static constexpr VTable Table{
        invoke, relocate,
        std::is_trivially_destructible_v<D> ? nullptr : dtor};
  };

  template <typename D> struct OpsHeap {
    static D *get(Storage &St) { return static_cast<D *>(St.Ptr); }
    static void invoke(Storage &St) { (*get(St))(); }
    static void relocate(Storage &Dst, Storage &Src) noexcept {
      Dst.Ptr = Src.Ptr;
    }
    static void dtor(Storage &St) noexcept { delete get(St); }
    static constexpr VTable Table{invoke, relocate, dtor};
  };

  template <typename F> void init(F &&Fn) {
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>) {
      ::new (static_cast<void *>(S.Buf)) D(std::forward<F>(Fn));
      VT = &OpsInline<D>::Table;
    } else {
      S.Ptr = new D(std::forward<F>(Fn));
      VT = &OpsHeap<D>::Table;
    }
  }

  void moveFrom(EventFn &O) noexcept {
    VT = O.VT;
    if (VT) {
      VT->Relocate(S, O.S);
      O.VT = nullptr;
    }
  }

  const VTable *VT = nullptr;
  Storage S;
};

} // namespace parcae::sim

#endif // PARCAE_SIM_EVENTFN_H
