//===- Power.cpp - Platform power model and PDU sampling -------------------===//

#include "sim/Power.h"

using namespace parcae::sim;

EnergyMeter::EnergyMeter(Machine &M, PowerModel Model)
    : M(M), Model(Model), BusyCores(M.busyCores()),
      LastChange(M.sim().now()) {
  assert(!M.OnBusyCountChange && "machine already has an energy meter");
  M.OnBusyCountChange = [this](unsigned NewBusy) { onBusyChange(NewBusy); };
}

double EnergyMeter::joules() const {
  SimTime Now = M.sim().now();
  Joules += Model.watts(BusyCores) * toSeconds(Now - LastChange);
  LastChange = Now;
  return Joules;
}

void EnergyMeter::onBusyChange(unsigned NewBusy) {
  joules(); // settle the integral at the old busy count
  BusyCores = NewBusy;
}

PduSampler::PduSampler(Simulator &Sim, const EnergyMeter &Meter,
                       std::function<void(double)> OnSample, SimTime Period)
    : Sim(Sim), Meter(Meter), OnSample(std::move(OnSample)), Period(Period) {
  assert(Period > 0 && "sampling period must be positive");
  Sim.schedule(Period, [this] { tick(); });
}

void PduSampler::tick() {
  if (Stopped)
    return;
  LastWatts = Meter.currentWatts();
  if (OnSample)
    OnSample(LastWatts);
  Sim.schedule(Period, [this] { tick(); });
}
