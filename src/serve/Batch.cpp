//===- Batch.cpp - Request batching policy for the serve broker ------------===//

#include "serve/Batch.h"

#include <algorithm>

using namespace parcae;
using namespace parcae::serve;

const char *parcae::serve::batchCloseName(BatchClose Why) {
  switch (Why) {
  case BatchClose::Size:
    return "size";
  case BatchClose::Timer:
    return "timer";
  case BatchClose::Slo:
    return "slo";
  }
  return "?";
}

sim::SimTime BatchPolicy::closeDeadline(sim::SimTime OpenedAt,
                                        sim::SimTime HeadArrivedAt,
                                        sim::SimTime SloTarget) const {
  sim::SimTime At = OpenedAt + MaxWait;
  if (SloTarget > 0 && SloCloseFraction > 0) {
    sim::SimTime Headroom = static_cast<sim::SimTime>(
        static_cast<double>(SloTarget) * SloCloseFraction);
    At = std::min(At, HeadArrivedAt + Headroom);
  }
  return At;
}

BatchClose BatchPolicy::closeReasonAt(sim::SimTime At, sim::SimTime OpenedAt,
                                      sim::SimTime HeadArrivedAt,
                                      sim::SimTime SloTarget) const {
  if (SloTarget > 0 && SloCloseFraction > 0) {
    sim::SimTime Headroom = static_cast<sim::SimTime>(
        static_cast<double>(SloTarget) * SloCloseFraction);
    // When both deadlines land on the same instant the SLO trigger wins
    // the name: it is the binding constraint the operator tuned for.
    if (HeadArrivedAt + Headroom <= At && HeadArrivedAt + Headroom <=
                                              OpenedAt + MaxWait)
      return BatchClose::Slo;
  }
  return BatchClose::Timer;
}
