//===- Arrival.cpp - Open-loop arrival processes ---------------------------===//

#include "serve/Arrival.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

using namespace parcae;
using namespace parcae::serve;

ArrivalProcess::~ArrivalProcess() = default;

//===----------------------------------------------------------------------===//
// PoissonArrivals
//===----------------------------------------------------------------------===//

PoissonArrivals::PoissonArrivals(double RatePerSec, std::uint64_t Seed)
    : MeanSec(1.0 / RatePerSec), R(Seed) {
  assert(RatePerSec > 0 && "Poisson arrivals need a positive rate");
}

std::optional<sim::SimTime> PoissonArrivals::nextDelay(sim::SimTime) {
  return sim::fromSeconds(R.nextExponential(MeanSec));
}

//===----------------------------------------------------------------------===//
// BurstyArrivals
//===----------------------------------------------------------------------===//

BurstyArrivals::BurstyArrivals(double QuietRate, double BurstRate,
                               double MeanQuietSec, double MeanBurstSec,
                               std::uint64_t Seed)
    : QuietRate(QuietRate), BurstRate(BurstRate), MeanQuietSec(MeanQuietSec),
      MeanBurstSec(MeanBurstSec), R(Seed) {
  assert(QuietRate >= 0 && BurstRate > 0 && "burst state needs a rate");
  assert(MeanQuietSec > 0 && MeanBurstSec > 0 && "dwell times are positive");
}

std::optional<sim::SimTime> BurstyArrivals::nextDelay(sim::SimTime Now) {
  if (!Primed) {
    Primed = true;
    StateEndAt = Now + sim::fromSeconds(R.nextExponential(MeanQuietSec));
  }
  sim::SimTime Cursor = Now;
  for (;;) {
    double Rate = Burst ? BurstRate : QuietRate;
    if (Rate > 0) {
      sim::SimTime D = sim::fromSeconds(R.nextExponential(1.0 / Rate));
      if (Cursor + D <= StateEndAt)
        return Cursor + D - Now;
      // The draw lands beyond the state boundary: discard and redraw at
      // the new rate from the boundary (memoryless).
    }
    Cursor = StateEndAt;
    Burst = !Burst;
    StateEndAt =
        Cursor + sim::fromSeconds(
                     R.nextExponential(Burst ? MeanBurstSec : MeanQuietSec));
  }
}

//===----------------------------------------------------------------------===//
// TraceArrivals
//===----------------------------------------------------------------------===//

TraceArrivals::TraceArrivals(std::vector<TraceSegment> Segments,
                             std::uint64_t Seed, bool Loop)
    : Segments(std::move(Segments)), R(Seed), Loop(Loop) {
  assert(!this->Segments.empty() && "trace needs at least one segment");
  for (const TraceSegment &S : this->Segments)
    assert(S.DurationSec > 0 && S.RatePerSec >= 0 && "malformed segment");
}

std::optional<sim::SimTime> TraceArrivals::nextDelay(sim::SimTime Now) {
  if (!Primed) {
    Primed = true;
    Seg = 0;
    SegEndAt = Now + sim::fromSeconds(Segments[0].DurationSec);
  }
  sim::SimTime Cursor = Now;
  for (;;) {
    double Rate = Segments[Seg].RatePerSec;
    if (Rate > 0) {
      sim::SimTime D = sim::fromSeconds(R.nextExponential(1.0 / Rate));
      if (Cursor + D <= SegEndAt)
        return Cursor + D - Now;
      // Redraw at the next segment's rate from the boundary (memoryless).
    }
    Cursor = SegEndAt;
    if (++Seg == Segments.size()) {
      if (!Loop)
        return std::nullopt;
      Seg = 0;
    }
    SegEndAt = Cursor + sim::fromSeconds(Segments[Seg].DurationSec);
  }
}

std::optional<std::vector<TraceSegment>>
TraceArrivals::parseCsv(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::vector<TraceSegment> Out;
  std::string Line;
  while (std::getline(In, Line)) {
    // Strip comments and surrounding whitespace.
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.erase(Hash);
    std::size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    std::size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);

    std::replace(Line.begin(), Line.end(), ',', ' ');
    std::istringstream Row(Line);
    TraceSegment S;
    if (!(Row >> S.DurationSec >> S.RatePerSec) || S.DurationSec <= 0 ||
        S.RatePerSec < 0)
      return std::nullopt;
    std::string Rest;
    if (Row >> Rest)
      return std::nullopt; // trailing garbage
    Out.push_back(S);
  }
  if (Out.empty())
    return std::nullopt;
  return Out;
}
