//===- ServeLoop.cpp - Open-loop request broker ----------------------------===//

#include "serve/ServeLoop.h"

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace parcae;
using namespace parcae::serve;

//===----------------------------------------------------------------------===//
// ClassTenant: one request class as seen by the platform daemon
//===----------------------------------------------------------------------===//

class ServeLoop::ClassTenant : public rt::PlatformTenant {
public:
  ClassTenant(ServeLoop &S, unsigned Idx) : S(S), Idx(Idx) {}

  const std::string &tenantName() const override {
    return S.Classes[Idx]->Desc.Name;
  }

  void onBudget(unsigned Budget, bool /*First*/) override {
    S.Classes[Idx]->Budget = std::max(1u, Budget);
    S.pump(Idx);
  }

  /// Live demand in threads: in-service batches plus the runners the
  /// waiting requests (queued + forming) would need once coalesced,
  /// each worth one runner configuration, floored at one runner (an
  /// idle class keeps enough to serve the next arrival without a round
  /// trip through the daemon). Deliberately NOT capped at the budget:
  /// demand above the budget is exactly the daemon's hunger signal.
  unsigned threadsUsed() const override {
    const ClassState &C = *S.Classes[Idx];
    std::uint64_t Per = std::max(1u, C.Desc.Config.totalThreads());
    std::uint64_t MaxB = std::max(1u, C.Desc.Batch.MaxBatch);
    std::uint64_t Waiting = C.Queue.size() + C.Forming.size();
    std::uint64_t Runners = C.Active.size() + (Waiting + MaxB - 1) / MaxB;
    std::uint64_t Demand = std::max(Runners * Per, Per);
    return static_cast<unsigned>(std::min<std::uint64_t>(Demand, 1u << 20));
  }

  bool wantsMore() const override {
    const ClassState &C = *S.Classes[Idx];
    unsigned Per = std::max(1u, C.Desc.Config.totalThreads());
    return !C.Queue.empty() || !C.Forming.empty() ||
           C.Active.size() * static_cast<std::uint64_t>(Per) > C.Budget;
  }

  bool hasSlo() const override {
    return S.Classes[Idx]->Desc.Slo.enabled();
  }
  double sloTargetSec() const override {
    return sim::toSeconds(S.Classes[Idx]->Desc.Slo.Target);
  }
  double sloPercentile() const override {
    return S.Classes[Idx]->Desc.Slo.Percentile;
  }
  double sloLatencySec() const override {
    return S.recentLatencySec(Idx, sloPercentile());
  }

private:
  ServeLoop &S;
  unsigned Idx;
};

//===----------------------------------------------------------------------===//
// ServeLoop
//===----------------------------------------------------------------------===//

ServeLoop::ServeLoop(sim::Machine &M, const rt::RuntimeCosts &Costs,
                     rt::PlatformDaemon &Daemon)
    : M(M), Sim(M.sim()), Costs(Costs), Daemon(Daemon) {
#if PARCAE_TELEMETRY_ENABLED
  Tel = telemetry::recorder();
  if (Tel) {
    TelPid = Tel->processFor("serve");
    CntAdmitted = &Tel->metrics().counter("serve.admitted");
    CntRejected = &Tel->metrics().counter("serve.rejected");
    CntShed = &Tel->metrics().counter("serve.shed");
    CntMigrated = &Tel->metrics().counter("serve.migrations");
  }
#endif
  // Proactively migrate in-flight request regions off a failure domain
  // when the machine announces it ahead of time. The listener outlives
  // nothing: the loop and the machine share the benchmark's scope, and
  // warnings only fire while the simulator runs.
  M.addDomainWarningListener(
      [this](const sim::FailureDomainEvent &D) { onDomainWarning(D); });
}

ServeLoop::~ServeLoop() {
  for (auto &C : Classes) {
    C->Arrivals.reset();
    ++C->ArrivalEpoch;
    if (C->Tenant)
      Daemon.removeTenant(*C->Tenant);
  }
}

unsigned ServeLoop::addClass(RequestClassDesc Desc) {
  assert(Desc.MakeRegion && "request class needs a region factory");
  assert(Desc.ItersPerRequest > 0 && "requests need at least one iteration");
  assert(Desc.QueueCapacity > 0 && "admit queue needs capacity");
  if (!Desc.Policy)
    Desc.Policy = std::make_unique<DropTailAdmission>();

  unsigned Idx = static_cast<unsigned>(Classes.size());
  auto C = std::make_unique<ClassState>();
  C->Desc = std::move(Desc);
  C->Tenant = std::make_unique<ClassTenant>(*this, Idx);
  Classes.push_back(std::move(C));
  // Registration immediately grants a budget (onBudget -> pump).
  Daemon.addTenant(*Classes[Idx]->Tenant);
  return Idx;
}

void ServeLoop::startArrivals(unsigned Idx,
                              std::unique_ptr<ArrivalProcess> A) {
  assert(Idx < Classes.size() && A && "bad arrival registration");
  ClassState &C = *Classes[Idx];
  C.Arrivals = std::move(A);
  ++C.ArrivalEpoch;
  scheduleArrival(Idx);
}

void ServeLoop::stopArrivals(unsigned Idx) {
  assert(Idx < Classes.size());
  Classes[Idx]->Arrivals.reset();
  ++Classes[Idx]->ArrivalEpoch;
}

void ServeLoop::scheduleArrival(unsigned Idx) {
  ClassState &C = *Classes[Idx];
  std::optional<sim::SimTime> D = C.Arrivals->nextDelay(Sim.now());
  if (!D) {
    C.Arrivals.reset(); // a finite trace ended
    return;
  }
  std::uint64_t Epoch = C.ArrivalEpoch;
  Sim.schedule(*D, [this, Idx, Epoch] {
    ClassState &C = *Classes[Idx];
    if (Epoch != C.ArrivalEpoch || !C.Arrivals)
      return; // stopArrivals()/startArrivals() superseded this event
    arrive(Idx);
    scheduleArrival(Idx);
  });
}

bool ServeLoop::inject(unsigned Idx) {
  assert(Idx < Classes.size());
  std::uint64_t Admitted = Classes[Idx]->Stats.Admitted;
  arrive(Idx);
  return Classes[Idx]->Stats.Admitted != Admitted;
}

void ServeLoop::arrive(unsigned Idx) {
  ClassState &C = *Classes[Idx];
  ++C.Stats.Arrived;
  auto Req = std::make_shared<ServeRequest>();
  Req->Id = NextId++;
  Req->ClassIdx = Idx;
  Req->ArrivedAt = Sim.now();
  if (!C.Desc.Policy->admit(*Req, C.Queue.size(), C.Desc.QueueCapacity)) {
    ++C.Stats.Rejected;
    if (CntRejected)
      CntRejected->add();
    // Rejected requests finish here: mark and finalize them so
    // per-request observers see every arrival's outcome (shed requests
    // already flow through finalize; silently dropping rejections made
    // observers undercount).
    Req->Rejected = true;
    finalize(Idx, *Req);
    return;
  }
  ++C.Stats.Admitted;
  if (CntAdmitted)
    CntAdmitted->add();
  C.Queue.push_back(std::move(Req));
  pump(Idx);
}

unsigned ServeLoop::slotsFor(const ClassState &C) const {
  unsigned Per = std::max(1u, C.Desc.Config.totalThreads());
  return std::max(1u, C.Budget / Per);
}

void ServeLoop::pump(unsigned Idx) {
  if (DrainActive)
    return; // dispatch held: finishDrain() pumps every class
  ClassState &C = *Classes[Idx];
  unsigned MaxB = std::max(1u, C.Desc.Batch.MaxBatch);
  for (;;) {
    // Fill the forming batch from the queue head. Opening a batch
    // reserves one dispatch slot; with batching off (MaxB == 1) every
    // request forms a singleton batch that closes immediately below.
    while (C.Forming.size() < MaxB && !C.Queue.empty()) {
      if (C.Forming.empty() && C.Active.size() >= slotsFor(C))
        return; // no slot to reserve for a new batch
      std::shared_ptr<ServeRequest> Req = std::move(C.Queue.front());
      C.Queue.pop_front();
      if (C.Desc.Policy->shedAtDispatch(*Req, Sim.now())) {
        Req->Shed = true;
        ++C.Stats.Shed;
        if (CntShed)
          CntShed->add();
        finalize(Idx, *Req);
        continue;
      }
      if (C.Forming.empty()) {
        C.FormingOpenedAt = Sim.now();
        ++C.FormingEpoch;
      }
      C.Forming.push_back(std::move(Req));
    }
    if (C.Forming.empty())
      return;
    if (C.Forming.size() >= MaxB) {
      closeBatch(Idx, BatchClose::Size);
      continue; // another slot may be free and requests still queued
    }
    // Underfull and the queue is drained: hold the batch open for the
    // wait window, closing early when the head-of-line wait approaches
    // the class SLO target.
    armBatchTimer(Idx);
    return;
  }
}

void ServeLoop::armBatchTimer(unsigned Idx) {
  ClassState &C = *Classes[Idx];
  const BatchPolicy &BP = C.Desc.Batch;
  sim::SimTime SloTarget = C.Desc.Slo.enabled() ? C.Desc.Slo.Target : 0;
  sim::SimTime HeadArrived = C.Forming.front()->ArrivedAt;
  sim::SimTime CloseAt =
      BP.closeDeadline(C.FormingOpenedAt, HeadArrived, SloTarget);
  if (CloseAt <= Sim.now()) {
    // Already overdue (e.g. re-pumped after a drain released the hold).
    closeBatch(Idx, BP.closeReasonAt(CloseAt, C.FormingOpenedAt, HeadArrived,
                                     SloTarget));
    pump(Idx);
    return;
  }
  if (C.TimerArmedEpoch == C.FormingEpoch)
    return; // one timer per batch; later members never extend it
  C.TimerArmedEpoch = C.FormingEpoch;
  std::uint64_t Epoch = C.FormingEpoch;
  Sim.schedule(CloseAt - Sim.now(), [this, Idx, Epoch, CloseAt] {
    ClassState &C = *Classes[Idx];
    if (Epoch != C.FormingEpoch || C.Forming.empty())
      return; // the batch already closed (size trigger beat the timer)
    if (DrainActive)
      return; // dispatch held; finishDrain()'s pump re-closes overdue
    sim::SimTime SloTarget = C.Desc.Slo.enabled() ? C.Desc.Slo.Target : 0;
    closeBatch(Idx, C.Desc.Batch.closeReasonAt(
                        CloseAt, C.FormingOpenedAt,
                        C.Forming.front()->ArrivedAt, SloTarget));
    pump(Idx);
  });
}

void ServeLoop::closeBatch(unsigned Idx, BatchClose Why) {
  ClassState &C = *Classes[Idx];
  assert(!C.Forming.empty() && "closing an empty batch");
  std::vector<std::shared_ptr<ServeRequest>> Members = std::move(C.Forming);
  C.Forming.clear();
  ++C.BStats.Batches;
  C.BStats.BatchedRequests += Members.size();
  C.BStats.OccupancyH.add(static_cast<double>(Members.size()));
  switch (Why) {
  case BatchClose::Size:
    ++C.BStats.SizeCloses;
    break;
  case BatchClose::Timer:
    ++C.BStats.TimerCloses;
    break;
  case BatchClose::Slo:
    ++C.BStats.SloCloses;
    break;
  }
  // Trace only real coalescing: a singleton-per-request stream would
  // double the unbatched trace volume for no information.
  if (C.Desc.Batch.enabled())
    PARCAE_TRACE(
        Tel, instant(TelPid, 0, "serve", "batch_close",
                     {telemetry::TraceArg::str("class", C.Desc.Name),
                      telemetry::TraceArg::num("size", Members.size()),
                      telemetry::TraceArg::str("why", batchCloseName(Why))}));
  dispatch(Idx, std::move(Members));
}

void ServeLoop::dispatch(unsigned Idx,
                         std::vector<std::shared_ptr<ServeRequest>> B) {
  ClassState &C = *Classes[Idx];
  assert(!B.empty() && "dispatching an empty batch");
  for (auto &Req : B)
    Req->StartedAt = Sim.now();
  auto F = std::make_unique<InFlight>(C.Desc.MakeRegion(*B.front()));
  F->Members = std::move(B);
  F->Source = std::make_unique<rt::CountedWorkSource>(
      C.Desc.ItersPerRequest * F->Members.size());
  F->Runner =
      std::make_unique<rt::RegionRunner>(M, Costs, F->Region, *F->Source);
  InFlight *Fp = F.get();
  F->Runner->OnComplete = [this, Idx, Fp] { finish(Idx, Fp); };
  // Watermark attribution only matters for real batches; singletons
  // keep the hot path free of the per-retirement callback.
  if (Fp->Members.size() > 1)
    F->Runner->OnProgress = [this, Idx, Fp](std::uint64_t Retired) {
      onBatchProgress(Idx, Fp, Retired);
    };
  C.Active.push_back(std::move(F));
  Fp->Runner->start(C.Desc.Config);
}

void ServeLoop::onBatchProgress(unsigned Idx, InFlight *F,
                                std::uint64_t Retired) {
  // Member i is complete once the batch retired (i + 1) x iters-per-
  // request iterations. The last member waits for the runner's own
  // completion (which includes the final drain), matching the singleton
  // path. Crossings are idempotent: an abortive recovery may replay
  // iterations and repeat watermarks, but Attributed only advances.
  const ClassState &C = *Classes[Idx];
  std::uint64_t Per = C.Desc.ItersPerRequest;
  while (F->Attributed + 1 < F->Members.size() &&
         Retired >= (F->Attributed + 1) * Per) {
    completeMember(Idx, *F->Members[F->Attributed]);
    ++F->Attributed;
  }
}

void ServeLoop::completeMember(unsigned Idx, ServeRequest &R) {
  ClassState &C = *Classes[Idx];
  R.CompletedAt = Sim.now();

  double QueueUs = static_cast<double>(R.StartedAt - R.ArrivedAt) / 1e3;
  double ServiceUs = static_cast<double>(R.CompletedAt - R.StartedAt) / 1e3;
  C.Stats.QueueWaitUs.add(QueueUs);
  C.Stats.ServiceUs.add(ServiceUs);
  C.Stats.TotalUs.add(QueueUs + ServiceUs);
  ++C.Stats.Completed;
  if (C.Desc.Slo.enabled() && R.totalLatency() > C.Desc.Slo.Target)
    ++C.Stats.SloViolations;

  C.RecentSec.emplace_back(R.CompletedAt, sim::toSeconds(R.totalLatency()));
  while (C.RecentSec.size() > ClassState::RecentCap ||
         (!C.RecentSec.empty() &&
          C.RecentSec.front().first + ClassState::RecentWindow <
              R.CompletedAt))
    C.RecentSec.pop_front();
  C.RecentDirty = true;

  finalize(Idx, R);
}

void ServeLoop::finish(unsigned Idx, InFlight *F) {
  ClassState &C = *Classes[Idx];
  // Everything the watermarks did not already attribute — always at
  // least the last member — completes with the runner.
  for (std::size_t I = F->Attributed; I < F->Members.size(); ++I)
    completeMember(Idx, *F->Members[I]);
  F->Attributed = F->Members.size();

  // OnComplete fires from inside the runner's own execution: move the
  // whole in-flight record to the reap list and destroy it (and refill
  // the freed slot) one event later.
  auto It = std::find_if(C.Active.begin(), C.Active.end(),
                         [F](const auto &P) { return P.get() == F; });
  assert(It != C.Active.end() && "completion for an unknown batch");
  Reap.push_back(std::move(*It));
  C.Active.erase(It);
  if (!ReapScheduled) {
    ReapScheduled = true;
    Sim.schedule(0, [this] {
      ReapScheduled = false;
      Reap.clear();
      for (unsigned I = 0; I < Classes.size(); ++I)
        pump(I);
    });
  }
}

void ServeLoop::onDomainWarning(const sim::FailureDomainEvent &D) {
  if (DrainActive) {
    // A second domain warned while the first drain is still quiescing.
    // Dropping it would leave that domain's cores busy when they fail;
    // queue it and run the drain back-to-back from finishDrain().
    PendingWarnings.push_back(D);
    return;
  }
  DrainActive = true;
  DrainStartAt = Sim.now();
  DrainCores = D.Cores;
  DrainMigrations.clear();
  DrainPending = 0;
  PARCAE_TRACE(
      Tel, instant(TelPid, 0, "serve", "serve_drain",
                   {telemetry::TraceArg::str("domain", D.Name),
                    telemetry::TraceArg::num("cores", D.Cores.size())}));
  // Checkpoint every in-flight request region. Suspended runners hold no
  // thread, so once the last one quiesces the doomed cores are idle.
  for (unsigned Idx = 0; Idx < Classes.size(); ++Idx) {
    for (auto &FP : Classes[Idx]->Active) {
      InFlight *F = FP.get();
      bool Ok = F->Runner->requestCheckpoint(
          [this, Idx, F](const rt::RunnerCheckpoint *CP) {
            if (CP)
              DrainMigrations.push_back({Idx, F, *CP});
            // else: completed before quiescing — reaped normally.
            assert(DrainPending > 0);
            if (--DrainPending == 0)
              finishDrain();
          });
      if (Ok)
        ++DrainPending;
    }
  }
  if (DrainPending == 0)
    finishDrain();
}

void ServeLoop::finishDrain() {
  // Everything is quiesced: retire the doomed cores with nothing running
  // on them, then resume each suspended request where it left off.
  for (unsigned Core : DrainCores)
    M.offlineCore(Core);
  for (MigratingRequest &Mg : DrainMigrations) {
    Mg.F->Runner->resume(Mg.CP.Config, Mg.CP.Cursor);
    // A migrated batch carries every still-unfinished member request.
    Migrations += Mg.F->Members.size() - Mg.F->Attributed;
    if (CntMigrated)
      CntMigrated->add();
    PARCAE_TRACE(
        Tel, instant(TelPid, 0, "serve", "migrate",
                     {telemetry::TraceArg::str("class",
                                               Classes[Mg.ClassIdx]->Desc.Name),
                      telemetry::TraceArg::num("request",
                                               Mg.F->Members.front()->Id),
                      telemetry::TraceArg::num("members",
                                               Mg.F->Members.size() -
                                                   Mg.F->Attributed),
                      telemetry::TraceArg::num("cursor", Mg.CP.Cursor)}));
  }
  ++DrainsCompleted;
  PARCAE_TRACE(
      Tel,
      instant(TelPid, 0, "serve", "serve_drain_done",
              {telemetry::TraceArg::num("migrated", DrainMigrations.size()),
               telemetry::TraceArg::num(
                   "latency_us",
                   sim::toSeconds(Sim.now() - DrainStartAt) * 1e6)}));
#if PARCAE_TELEMETRY_ENABLED
  if (Tel)
    Tel->metrics()
        .histogram("serve.drain_latency_us")
        .add(sim::toSeconds(Sim.now() - DrainStartAt) * 1e6);
#endif
  DrainMigrations.clear();
  DrainCores.clear();
  DrainActive = false;
  if (!PendingWarnings.empty()) {
    // A warning arrived mid-drain: start its drain immediately instead
    // of pumping, so nothing new lands on the next doomed domain.
    sim::FailureDomainEvent Next = std::move(PendingWarnings.front());
    PendingWarnings.pop_front();
    onDomainWarning(Next);
    return;
  }
  for (unsigned I = 0; I < Classes.size(); ++I)
    pump(I);
}

void ServeLoop::finalize(unsigned Idx, const ServeRequest &R) {
  (void)Idx;
  if (OnRequestDone)
    OnRequestDone(R);
}

const std::string &ServeLoop::className(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->Desc.Name;
}

const ServeLoop::ClassStats &ServeLoop::stats(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->Stats;
}

std::size_t ServeLoop::queueDepth(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->Queue.size();
}

unsigned ServeLoop::inService(unsigned Idx) const {
  assert(Idx < Classes.size());
  return static_cast<unsigned>(Classes[Idx]->Active.size());
}

unsigned ServeLoop::budgetOf(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->Budget;
}

double ServeLoop::recentLatencySec(unsigned Idx, double P) const {
  assert(Idx < Classes.size());
  const ClassState &C = *Classes[Idx];
  while (!C.RecentSec.empty() &&
         C.RecentSec.front().first + ClassState::RecentWindow < Sim.now()) {
    C.RecentSec.pop_front();
    C.RecentDirty = true;
  }
  double Lat = -1.0;
  if (!C.RecentSec.empty()) {
    // Rebuild the cached sample set only when the window changed; the
    // arbiter probes every tick and used to copy + sort the window each
    // time. SampleSet's sorted-order cache then makes repeated
    // percentile queries between completions sort-free (pinned by
    // recentProbeSorts()).
    if (C.RecentDirty) {
      C.RecentSorted.clear();
      for (const auto &E : C.RecentSec)
        C.RecentSorted.add(E.second);
      C.RecentDirty = false;
    }
    Lat = C.RecentSorted.percentile(P);
  }
  // Floor by the head-of-line wait (queued or forming): when requests
  // wait faster than they finish, the queue itself is the latency signal.
  const ServeRequest *Oldest = nullptr;
  if (!C.Forming.empty())
    Oldest = C.Forming.front().get();
  else if (!C.Queue.empty())
    Oldest = C.Queue.front().get();
  if (Oldest)
    Lat = std::max(Lat, sim::toSeconds(Sim.now() - Oldest->ArrivedAt));
  return Lat;
}

const BatchStats &ServeLoop::batchStats(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->BStats;
}

std::uint64_t ServeLoop::inFlightRequests(unsigned Idx) const {
  assert(Idx < Classes.size());
  std::uint64_t N = 0;
  for (const auto &F : Classes[Idx]->Active)
    N += F->Members.size() - F->Attributed;
  return N;
}

std::uint64_t ServeLoop::recentProbeSorts(unsigned Idx) const {
  assert(Idx < Classes.size());
  return Classes[Idx]->RecentSorted.sortsPerformed();
}
