//===- Arrival.h - Open-loop arrival processes ------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded arrival processes for the serving layer: requests arrive whether
/// or not capacity is free (open loop), which is what separates a serving
/// benchmark from the closed-loop trip-counted runs everywhere else in the
/// repo. Three generators:
///
///  * PoissonArrivals — constant-rate memoryless arrivals (Chapter 8's
///    load generator);
///  * BurstyArrivals  — a two-state Markov-modulated Poisson process
///    (quiet/burst) with exponential dwell times;
///  * TraceArrivals   — a piecewise-constant rate replay (e.g. a diurnal
///    curve loaded from CSV), optionally looping.
///
/// All randomness comes from a caller-provided seed and all time is the
/// simulator's virtual clock, so a replay with the same seed is
/// byte-identical — the determinism invariant check_serve.sh asserts.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SERVE_ARRIVAL_H
#define PARCAE_SERVE_ARRIVAL_H

#include "sim/Time.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parcae::serve {

/// A source of request arrival times, driven by virtual time.
class ArrivalProcess {
public:
  virtual ~ArrivalProcess();

  /// Delay from \p Now until the next arrival, or nullopt when the
  /// process has ended (a finite trace ran out). Called once per arrival
  /// with the previous arrival's timestamp, so implementations may keep
  /// an internal cursor anchored at \p Now.
  virtual std::optional<sim::SimTime> nextDelay(sim::SimTime Now) = 0;
};

/// Constant-rate Poisson arrivals: exponential inter-arrival times with
/// mean 1/rate.
class PoissonArrivals : public ArrivalProcess {
public:
  PoissonArrivals(double RatePerSec, std::uint64_t Seed);

  std::optional<sim::SimTime> nextDelay(sim::SimTime Now) override;

private:
  double MeanSec;
  Rng R;
};

/// Two-state Markov-modulated Poisson process: a quiet state at
/// \p QuietRate and a burst state at \p BurstRate, with exponentially
/// distributed dwell times in each. At a state boundary the pending
/// inter-arrival draw is discarded and redrawn at the new rate — legal
/// because the exponential is memoryless, and it keeps the generator
/// exactly one Rng stream regardless of where boundaries fall.
class BurstyArrivals : public ArrivalProcess {
public:
  BurstyArrivals(double QuietRate, double BurstRate, double MeanQuietSec,
                 double MeanBurstSec, std::uint64_t Seed);

  std::optional<sim::SimTime> nextDelay(sim::SimTime Now) override;

  bool inBurst() const { return Burst; }

private:
  double QuietRate, BurstRate;
  double MeanQuietSec, MeanBurstSec;
  Rng R;
  bool Burst = false;
  bool Primed = false;
  sim::SimTime StateEndAt = 0;
};

/// One piece of a piecewise-constant rate curve.
struct TraceSegment {
  double DurationSec = 0;
  double RatePerSec = 0;
};

/// Replays a rate curve (e.g. a diurnal profile): Poisson arrivals whose
/// rate steps through \p Segments. Zero-rate segments generate nothing;
/// with \p Loop the curve repeats forever, otherwise the process ends at
/// the last segment boundary.
class TraceArrivals : public ArrivalProcess {
public:
  TraceArrivals(std::vector<TraceSegment> Segments, std::uint64_t Seed,
                bool Loop = false);

  std::optional<sim::SimTime> nextDelay(sim::SimTime Now) override;

  /// Parses a rate-curve CSV: one `duration_sec,rate_per_sec` pair per
  /// line, `#` comments and blank lines ignored. Returns nullopt (and
  /// not a partial curve) on any malformed line.
  static std::optional<std::vector<TraceSegment>>
  parseCsv(const std::string &Path);

  const std::vector<TraceSegment> &segments() const { return Segments; }

private:
  std::vector<TraceSegment> Segments;
  Rng R;
  bool Loop;
  bool Primed = false;
  std::size_t Seg = 0;
  sim::SimTime SegEndAt = 0;
};

} // namespace parcae::serve

#endif // PARCAE_SERVE_ARRIVAL_H
