//===- Batch.h - Request batching policy for the serve broker ---*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic batching for ServeLoop: a per-class BatchPolicy coalesces
/// queued requests into one shared region/runner so the per-request
/// spin-up cost (FlexibleRegion + RegionRunner construction and the
/// measurement ramp) amortizes across the batch. A forming batch closes
/// on the first of three triggers:
///
///   * size  — MaxBatch members collected;
///   * timer — MaxWait elapsed since the batch opened;
///   * slo   — the head-of-line member's queue wait reached
///             SloCloseFraction of the class SLO target (waiting any
///             longer to fill the batch would spend the head's latency
///             budget on coalescing).
///
/// Completion stays per-request: the batch runner's commit-frontier
/// progress hook attributes each member at its iteration watermark, so
/// latency histograms and SLO accounting never see per-batch numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SERVE_BATCH_H
#define PARCAE_SERVE_BATCH_H

#include "sim/Time.h"
#include "support/Stats.h"

#include <cstdint>

namespace parcae::serve {

/// Why a forming batch stopped accepting members.
enum class BatchClose { Size, Timer, Slo };

/// Human-readable close-trigger name (stats tables, trace args).
const char *batchCloseName(BatchClose Why);

/// Per-class batching knobs. MaxBatch <= 1 disables coalescing: every
/// request dispatches as a singleton, byte-identical to the unbatched
/// broker.
struct BatchPolicy {
  /// Members per batch; the size trigger. <= 1 turns batching off.
  unsigned MaxBatch = 1;
  /// How long an underfull batch may hold its reserved slot open waiting
  /// for more arrivals, measured from the batch's first member.
  sim::SimTime MaxWait = 0;
  /// SLO-aware early close: close once the head-of-line member's queue
  /// wait reaches this fraction of the class SLO target. 0 disables the
  /// trigger; ignored when the class carries no SLO.
  double SloCloseFraction = 0.5;

  bool enabled() const { return MaxBatch > 1; }

  /// Absolute virtual time at which an underfull batch must close:
  /// the earlier of the wait window (from \p OpenedAt) and the SLO
  /// trigger (from the head-of-line member's \p HeadArrivedAt).
  /// \p SloTarget is 0 when the class has no SLO.
  sim::SimTime closeDeadline(sim::SimTime OpenedAt, sim::SimTime HeadArrivedAt,
                             sim::SimTime SloTarget) const;

  /// Which trigger a close at \p At corresponds to (the timer event
  /// cannot tell on its own — both deadlines funnel into one event).
  BatchClose closeReasonAt(sim::SimTime At, sim::SimTime OpenedAt,
                           sim::SimTime HeadArrivedAt,
                           sim::SimTime SloTarget) const;
};

/// Per-class batching statistics (all zero while batching is disabled,
/// except that singleton dispatches still count as size-closed batches
/// of one — the spin-up amortization report reads Batches as "regions
/// started").
struct BatchStats {
  std::uint64_t Batches = 0;          ///< batches dispatched (== runners)
  std::uint64_t BatchedRequests = 0;  ///< member requests across them
  std::uint64_t SizeCloses = 0;       ///< closed by the size trigger
  std::uint64_t TimerCloses = 0;      ///< closed by the wait window
  std::uint64_t SloCloses = 0;        ///< closed by SLO pressure
  Histogram OccupancyH;               ///< members per dispatched batch

  /// Requests served per region spin-up — the amortization factor.
  double requestsPerRegion() const {
    return Batches ? static_cast<double>(BatchedRequests) /
                         static_cast<double>(Batches)
                   : 0.0;
  }
};

} // namespace parcae::serve

#endif // PARCAE_SERVE_BATCH_H
