//===- ServeLoop.h - Open-loop request broker -------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's request broker: maps each admitted request of a
/// registered RequestClass to its own flexible-region execution, tracks
/// queue/service/total latency per request, and registers each class as a
/// PlatformTenant so the platform daemon arbitrates thread budgets — and
/// latency SLOs — across classes.
///
/// Flow per class:
///
///   ArrivalProcess -> admission (bounded queue, pluggable policy)
///                  -> dispatch into at most budget/threads-per-request
///                     concurrent per-request RegionRunners
///                  -> completion stamps + histograms + SLO window.
///
/// The class's tenant reports its live thread demand (queue + in-service)
/// to the daemon and exposes its windowed SLO latency; the daemon's SLO
/// pass then moves budget toward violating classes under overload.
///
/// Everything runs on the simulator's virtual clock from caller-provided
/// seeds, so a same-seed replay is byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SERVE_SERVELOOP_H
#define PARCAE_SERVE_SERVELOOP_H

#include "core/Costs.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/Platform.h"
#include "morta/RegionRunner.h"
#include "serve/Admission.h"
#include "serve/Arrival.h"
#include "sim/Machine.h"
#include "support/Stats.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace parcae::serve {

/// A latency service-level objective: percentile(\p Percentile) of total
/// request latency must stay at or below \p Target.
struct SloSpec {
  double Percentile = 95.0;
  sim::SimTime Target = 0; ///< 0 = no SLO
  bool enabled() const { return Target > 0; }
};

/// Everything needed to serve one class of requests.
struct RequestClassDesc {
  std::string Name;
  /// Builds the per-request region. Regions should reuse the class name
  /// so telemetry maps every request of a class onto one process track.
  std::function<rt::FlexibleRegion(const ServeRequest &)> MakeRegion;
  /// Iterations each request's region executes.
  std::uint64_t ItersPerRequest = 1;
  /// Configuration each per-request runner starts under; its
  /// totalThreads() is the class's threads-per-request.
  rt::RegionConfig Config;
  std::size_t QueueCapacity = 256;
  SloSpec Slo;
  /// Admission policy; DropTailAdmission when null.
  std::unique_ptr<AdmissionPolicy> Policy;
};

/// Open-loop request broker over one simulated machine.
class ServeLoop {
public:
  ServeLoop(sim::Machine &M, const rt::RuntimeCosts &Costs,
            rt::PlatformDaemon &Daemon);
  ~ServeLoop();
  ServeLoop(const ServeLoop &) = delete;
  ServeLoop &operator=(const ServeLoop &) = delete;

  /// Registers a request class (and its daemon tenant). Returns the
  /// class index used by every other accessor.
  unsigned addClass(RequestClassDesc Desc);

  /// Starts (or replaces) the open-loop arrival process for a class.
  void startArrivals(unsigned Idx, std::unique_ptr<ArrivalProcess> A);
  /// Stops generating arrivals for a class (in-flight work completes).
  void stopArrivals(unsigned Idx);

  /// Injects a single arrival now (tests drive admission directly).
  /// Returns false when the request was rejected.
  bool inject(unsigned Idx);

  /// Per-class serving statistics. Latency histograms are in
  /// microseconds of virtual time.
  struct ClassStats {
    std::uint64_t Arrived = 0;
    std::uint64_t Admitted = 0;
    std::uint64_t Rejected = 0; ///< refused at arrival (queue full)
    std::uint64_t Shed = 0;     ///< dropped at dispatch (deadline policy)
    std::uint64_t Completed = 0;
    std::uint64_t SloViolations = 0; ///< completions over the SLO target
    Histogram QueueWaitUs;
    Histogram ServiceUs;
    Histogram TotalUs;
  };

  unsigned numClasses() const { return static_cast<unsigned>(Classes.size()); }
  const std::string &className(unsigned Idx) const;
  const ClassStats &stats(unsigned Idx) const;
  std::size_t queueDepth(unsigned Idx) const;
  unsigned inService(unsigned Idx) const;
  /// The class's current daemon budget (threads).
  unsigned budgetOf(unsigned Idx) const;

  /// Latency at percentile \p P in seconds over the recent-completions
  /// window, floored by the current head-of-line queue wait so overload
  /// is visible even while completions are being shed; negative when the
  /// class has no signal yet.
  double recentLatencySec(unsigned Idx, double P) const;

  /// Fires once per finished request (completed or shed) — benches use
  /// it to bucket requests into load phases by arrival time.
  std::function<void(const ServeRequest &)> OnRequestDone;

  // --- Drain / migration (failure-domain warnings) ---------------------

  /// In-flight request regions migrated off a doomed failure domain.
  std::uint64_t migrations() const { return Migrations; }
  /// Warning drains completed (all in-flight requests checkpointed,
  /// doomed cores offlined, everything resumed on the survivors).
  unsigned drainsCompleted() const { return DrainsCompleted; }
  /// True between a domain warning and the migration completing; new
  /// dispatches are held (arrivals still queue and admission still runs).
  bool draining() const { return DrainActive; }

private:
  class ClassTenant;

  /// One in-flight request execution. Address-stable (held by unique
  /// pointer): the runner references Region and Source by address.
  struct InFlight {
    std::shared_ptr<ServeRequest> Req;
    rt::FlexibleRegion Region;
    std::unique_ptr<rt::CountedWorkSource> Source;
    std::unique_ptr<rt::RegionRunner> Runner;

    explicit InFlight(rt::FlexibleRegion R) : Region(std::move(R)) {}
  };

  struct ClassState {
    RequestClassDesc Desc;
    std::unique_ptr<ClassTenant> Tenant;
    std::unique_ptr<ArrivalProcess> Arrivals;
    std::uint64_t ArrivalEpoch = 0; ///< invalidates stale arrival events
    std::deque<std::shared_ptr<ServeRequest>> Queue;
    std::vector<std::unique_ptr<InFlight>> Active;
    unsigned Budget = 1;
    ClassStats Stats;
    /// (completion time, total latency in seconds) of recent
    /// completions: the SLO probe's window. Time-bounded so the signal
    /// decays when load changes — a count-bounded window would keep
    /// reading overload-era latencies long after recovery. mutable:
    /// probes prune expired entries from const accessors.
    static constexpr sim::SimTime RecentWindow = 150 * sim::MSec;
    static constexpr std::size_t RecentCap = 512;
    mutable std::deque<std::pair<sim::SimTime, double>> RecentSec;
  };

  void scheduleArrival(unsigned Idx);
  void arrive(unsigned Idx);
  void pump(unsigned Idx);
  void dispatch(unsigned Idx, std::shared_ptr<ServeRequest> Req);
  void finish(unsigned Idx, InFlight *F);
  void finalize(unsigned Idx, const ServeRequest &R);
  unsigned slotsFor(const ClassState &C) const;
  void onDomainWarning(const sim::FailureDomainEvent &D);
  /// Every in-flight request quiesced: offline the doomed cores, resume
  /// each suspended runner on the survivors, release the dispatch hold.
  void finishDrain();

  sim::Machine &M;
  sim::Simulator &Sim;
  const rt::RuntimeCosts &Costs;
  rt::PlatformDaemon &Daemon;
  std::vector<std::unique_ptr<ClassState>> Classes;
  /// Runners whose OnComplete fired this event; destroyed one event
  /// later (a runner cannot be destroyed from inside its own callback).
  std::vector<std::unique_ptr<InFlight>> Reap;
  bool ReapScheduled = false;
  std::uint64_t NextId = 1;

  // Drain state. While DrainActive, dispatch is held; suspended runners
  // cannot complete, so the InFlight pointers collected here stay valid
  // until finishDrain() resumes them (a runner that completes before
  // quiescing reports a null checkpoint and is reaped normally).
  struct MigratingRequest {
    unsigned ClassIdx = 0;
    InFlight *F = nullptr;
    rt::RunnerCheckpoint CP;
  };
  bool DrainActive = false;
  unsigned DrainPending = 0; ///< checkpoint callbacks outstanding
  sim::SimTime DrainStartAt = 0;
  std::vector<unsigned> DrainCores;
  std::vector<MigratingRequest> DrainMigrations;
  std::uint64_t Migrations = 0;
  unsigned DrainsCompleted = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  telemetry::Counter *CntAdmitted = nullptr;
  telemetry::Counter *CntRejected = nullptr;
  telemetry::Counter *CntShed = nullptr;
  telemetry::Counter *CntMigrated = nullptr;
};

} // namespace parcae::serve

#endif // PARCAE_SERVE_SERVELOOP_H
