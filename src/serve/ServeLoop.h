//===- ServeLoop.h - Open-loop request broker -------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's request broker: maps each admitted request of a
/// registered RequestClass to its own flexible-region execution, tracks
/// queue/service/total latency per request, and registers each class as a
/// PlatformTenant so the platform daemon arbitrates thread budgets — and
/// latency SLOs — across classes.
///
/// Flow per class:
///
///   ArrivalProcess -> admission (bounded queue, pluggable policy)
///                  -> batching (optional: coalesce queued requests into
///                     one shared region per BatchPolicy)
///                  -> dispatch into at most budget/threads-per-request
///                     concurrent RegionRunners (one per batch)
///                  -> completion stamps + histograms + SLO window,
///                     attributed per request at iteration watermarks.
///
/// The class's tenant reports its live thread demand (queue + in-service)
/// to the daemon and exposes its windowed SLO latency; the daemon's SLO
/// pass then moves budget toward violating classes under overload.
///
/// Everything runs on the simulator's virtual clock from caller-provided
/// seeds, so a same-seed replay is byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SERVE_SERVELOOP_H
#define PARCAE_SERVE_SERVELOOP_H

#include "core/Costs.h"
#include "core/Region.h"
#include "core/WorkSource.h"
#include "morta/Platform.h"
#include "morta/RegionRunner.h"
#include "serve/Admission.h"
#include "serve/Arrival.h"
#include "serve/Batch.h"
#include "sim/Faults.h"
#include "sim/Machine.h"
#include "support/Stats.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace parcae::serve {

/// A latency service-level objective: percentile(\p Percentile) of total
/// request latency must stay at or below \p Target.
struct SloSpec {
  double Percentile = 95.0;
  sim::SimTime Target = 0; ///< 0 = no SLO
  bool enabled() const { return Target > 0; }
};

/// Everything needed to serve one class of requests.
struct RequestClassDesc {
  std::string Name;
  /// Builds the per-request region. Regions should reuse the class name
  /// so telemetry maps every request of a class onto one process track.
  std::function<rt::FlexibleRegion(const ServeRequest &)> MakeRegion;
  /// Iterations each request's region executes.
  std::uint64_t ItersPerRequest = 1;
  /// Configuration each per-request runner starts under; its
  /// totalThreads() is the class's threads-per-request.
  rt::RegionConfig Config;
  std::size_t QueueCapacity = 256;
  SloSpec Slo;
  /// Admission policy; DropTailAdmission when null.
  std::unique_ptr<AdmissionPolicy> Policy;
  /// Request coalescing; the default (MaxBatch = 1) dispatches every
  /// request as its own region, the pre-batching behavior.
  BatchPolicy Batch;
};

/// Open-loop request broker over one simulated machine.
class ServeLoop {
public:
  ServeLoop(sim::Machine &M, const rt::RuntimeCosts &Costs,
            rt::PlatformDaemon &Daemon);
  ~ServeLoop();
  ServeLoop(const ServeLoop &) = delete;
  ServeLoop &operator=(const ServeLoop &) = delete;

  /// Registers a request class (and its daemon tenant). Returns the
  /// class index used by every other accessor.
  unsigned addClass(RequestClassDesc Desc);

  /// Starts (or replaces) the open-loop arrival process for a class.
  void startArrivals(unsigned Idx, std::unique_ptr<ArrivalProcess> A);
  /// Stops generating arrivals for a class (in-flight work completes).
  void stopArrivals(unsigned Idx);

  /// Injects a single arrival now (tests drive admission directly).
  /// Returns false when the request was rejected.
  bool inject(unsigned Idx);

  /// Per-class serving statistics. Latency histograms are in
  /// microseconds of virtual time.
  struct ClassStats {
    std::uint64_t Arrived = 0;
    std::uint64_t Admitted = 0;
    std::uint64_t Rejected = 0; ///< refused at arrival (queue full)
    std::uint64_t Shed = 0;     ///< dropped at dispatch (deadline policy)
    std::uint64_t Completed = 0;
    std::uint64_t SloViolations = 0; ///< completions over the SLO target
    Histogram QueueWaitUs;
    Histogram ServiceUs;
    Histogram TotalUs;
  };

  unsigned numClasses() const { return static_cast<unsigned>(Classes.size()); }
  const std::string &className(unsigned Idx) const;
  const ClassStats &stats(unsigned Idx) const;
  /// Batch dispatch statistics (singleton dispatches count as batches
  /// of one, so Batches always equals regions spun up for the class).
  const BatchStats &batchStats(unsigned Idx) const;
  std::size_t queueDepth(unsigned Idx) const;
  /// In-flight batches (each holds one region/runner; a batch may carry
  /// up to BatchPolicy::MaxBatch member requests).
  unsigned inService(unsigned Idx) const;
  /// Member requests across all in-flight batches not yet completed.
  std::uint64_t inFlightRequests(unsigned Idx) const;
  /// The class's current daemon budget (threads).
  unsigned budgetOf(unsigned Idx) const;

  /// Latency at percentile \p P in seconds over the recent-completions
  /// window, floored by the current head-of-line queue wait so overload
  /// is visible even while completions are being shed; negative when the
  /// class has no signal yet.
  double recentLatencySec(unsigned Idx, double P) const;

  /// Sorts the recent-latency probe performed for this class: stays
  /// flat across repeated probes between completions (the SLO probe's
  /// sorted-order cache; regression tests pin this).
  std::uint64_t recentProbeSorts(unsigned Idx) const;

  /// Fires once per finished request (completed, shed, or rejected) —
  /// benches use it to bucket requests into load phases by arrival
  /// time. Rejected requests carry Rejected = true and no timestamps
  /// beyond ArrivedAt.
  std::function<void(const ServeRequest &)> OnRequestDone;

  // --- Drain / migration (failure-domain warnings) ---------------------

  /// In-flight request regions migrated off a doomed failure domain.
  std::uint64_t migrations() const { return Migrations; }
  /// Warning drains completed (all in-flight requests checkpointed,
  /// doomed cores offlined, everything resumed on the survivors).
  unsigned drainsCompleted() const { return DrainsCompleted; }
  /// True between a domain warning and the migration completing; new
  /// dispatches are held (arrivals still queue and admission still runs).
  bool draining() const { return DrainActive; }

private:
  class ClassTenant;

  /// One in-flight batch execution (a singleton batch when batching is
  /// off): the member requests share one region/runner fed by a counted
  /// source of ItersPerRequest x Members.size() iterations. Address-
  /// stable (held by unique pointer): the runner references Region and
  /// Source by address.
  struct InFlight {
    std::vector<std::shared_ptr<ServeRequest>> Members;
    /// Members already completed at an iteration watermark; members
    /// [Attributed, size) are still in flight. The last member is
    /// always attributed at the runner's completion, so a singleton
    /// batch behaves exactly like the pre-batching broker.
    std::size_t Attributed = 0;
    rt::FlexibleRegion Region;
    std::unique_ptr<rt::CountedWorkSource> Source;
    std::unique_ptr<rt::RegionRunner> Runner;

    explicit InFlight(rt::FlexibleRegion R) : Region(std::move(R)) {}
  };

  struct ClassState {
    RequestClassDesc Desc;
    std::unique_ptr<ClassTenant> Tenant;
    std::unique_ptr<ArrivalProcess> Arrivals;
    std::uint64_t ArrivalEpoch = 0; ///< invalidates stale arrival events
    std::deque<std::shared_ptr<ServeRequest>> Queue;
    std::vector<std::unique_ptr<InFlight>> Active;
    unsigned Budget = 1;
    ClassStats Stats;
    BatchStats BStats;
    /// The forming batch: requests pulled off the queue, holding one
    /// reserved dispatch slot until the batch closes (size, timer, or
    /// SLO pressure). Always empty when batching is disabled.
    std::vector<std::shared_ptr<ServeRequest>> Forming;
    sim::SimTime FormingOpenedAt = 0;
    /// Bumped each time a batch opens; invalidates stale close timers.
    std::uint64_t FormingEpoch = 0;
    /// Epoch of the forming batch whose close timer is armed (one timer
    /// per batch; extra members never extend the deadline).
    std::uint64_t TimerArmedEpoch = 0;
    /// (completion time, total latency in seconds) of recent
    /// completions: the SLO probe's window. Time-bounded so the signal
    /// decays when load changes — a count-bounded window would keep
    /// reading overload-era latencies long after recovery. mutable:
    /// probes prune expired entries from const accessors.
    static constexpr sim::SimTime RecentWindow = 150 * sim::MSec;
    static constexpr std::size_t RecentCap = 512;
    mutable std::deque<std::pair<sim::SimTime, double>> RecentSec;
    /// Sorted-order cache over RecentSec's latencies: rebuilt (and
    /// re-sorted once) only when the window's contents changed since
    /// the last probe, so repeated SLO probes between completions are
    /// sort-free. mutable for the same reason as RecentSec.
    mutable SampleSet RecentSorted;
    mutable bool RecentDirty = true;
  };

  void scheduleArrival(unsigned Idx);
  void arrive(unsigned Idx);
  void pump(unsigned Idx);
  /// Closes the forming batch with \p Why and dispatches it.
  void closeBatch(unsigned Idx, BatchClose Why);
  /// Arms (once per batch) the earliest of the wait-window and
  /// SLO-early-close deadlines; closes immediately if already overdue.
  void armBatchTimer(unsigned Idx);
  void dispatch(unsigned Idx, std::vector<std::shared_ptr<ServeRequest>> B);
  /// Watermark attribution: completes every member whose iteration
  /// watermark the batch's retire count crossed (all but the last
  /// member, which completes with the runner).
  void onBatchProgress(unsigned Idx, InFlight *F, std::uint64_t Retired);
  /// Stamps one member completed now and feeds histograms, SLO
  /// accounting, the recent-latency window, and OnRequestDone.
  void completeMember(unsigned Idx, ServeRequest &R);
  void finish(unsigned Idx, InFlight *F);
  void finalize(unsigned Idx, const ServeRequest &R);
  unsigned slotsFor(const ClassState &C) const;
  void onDomainWarning(const sim::FailureDomainEvent &D);
  /// Every in-flight request quiesced: offline the doomed cores, resume
  /// each suspended runner on the survivors, release the dispatch hold.
  void finishDrain();

  sim::Machine &M;
  sim::Simulator &Sim;
  const rt::RuntimeCosts &Costs;
  rt::PlatformDaemon &Daemon;
  std::vector<std::unique_ptr<ClassState>> Classes;
  /// Runners whose OnComplete fired this event; destroyed one event
  /// later (a runner cannot be destroyed from inside its own callback).
  std::vector<std::unique_ptr<InFlight>> Reap;
  bool ReapScheduled = false;
  std::uint64_t NextId = 1;

  // Drain state. While DrainActive, dispatch is held; suspended runners
  // cannot complete, so the InFlight pointers collected here stay valid
  // until finishDrain() resumes them (a runner that completes before
  // quiescing reports a null checkpoint and is reaped normally).
  struct MigratingRequest {
    unsigned ClassIdx = 0;
    InFlight *F = nullptr;
    rt::RunnerCheckpoint CP;
  };
  bool DrainActive = false;
  unsigned DrainPending = 0; ///< checkpoint callbacks outstanding
  sim::SimTime DrainStartAt = 0;
  std::vector<unsigned> DrainCores;
  std::vector<MigratingRequest> DrainMigrations;
  /// Domain warnings announced while a drain was already active: run
  /// one at a time after finishDrain(), instead of silently dropping
  /// them (which would hard-offline the second domain under running
  /// work and abort its requests).
  std::deque<sim::FailureDomainEvent> PendingWarnings;
  std::uint64_t Migrations = 0;
  unsigned DrainsCompleted = 0;

  // Telemetry (null when tracing is off).
  telemetry::TraceRecorder *Tel = nullptr;
  std::uint32_t TelPid = 0;
  telemetry::Counter *CntAdmitted = nullptr;
  telemetry::Counter *CntRejected = nullptr;
  telemetry::Counter *CntShed = nullptr;
  telemetry::Counter *CntMigrated = nullptr;
};

} // namespace parcae::serve

#endif // PARCAE_SERVE_SERVELOOP_H
