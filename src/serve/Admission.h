//===- Admission.h - Admission control for the serving layer ----*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control for ServeLoop's bounded per-class queues. A policy is
/// consulted twice per request: at arrival (admit into the queue, or
/// reject) and at dispatch (serve, or shed a request whose queue wait
/// already makes its deadline unmeetable — serving it would waste capacity
/// on a response the client gave up on). Drop-tail is the baseline;
/// DeadlineEarlyDrop is what keeps goodput from collapsing under overload.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_SERVE_ADMISSION_H
#define PARCAE_SERVE_ADMISSION_H

#include "sim/Time.h"

#include <cstddef>
#include <cstdint>

namespace parcae::serve {

/// One request's lifecycle record. Timestamps are virtual; a zero
/// CompletedAt means still in flight (or shed).
struct ServeRequest {
  std::uint64_t Id = 0;
  unsigned ClassIdx = 0;
  sim::SimTime ArrivedAt = 0;
  sim::SimTime StartedAt = 0;   ///< dispatch time (0: never dispatched)
  sim::SimTime CompletedAt = 0; ///< service completion (0: not completed)
  bool Shed = false;            ///< dropped at dispatch by the policy
  bool Rejected = false;        ///< refused at arrival (queue full)

  bool completed() const { return CompletedAt != 0; }
  sim::SimTime queueWait() const {
    return (StartedAt ? StartedAt : ArrivedAt) - ArrivedAt;
  }
  sim::SimTime totalLatency() const { return CompletedAt - ArrivedAt; }
};

/// Decides which requests enter the queue and which still deserve service
/// when they reach its head.
class AdmissionPolicy {
public:
  virtual ~AdmissionPolicy();

  virtual const char *policyName() const = 0;

  /// Arrival-time decision: admit \p R into a queue currently holding
  /// \p QueueDepth of \p Capacity requests?
  virtual bool admit(const ServeRequest &R, std::size_t QueueDepth,
                     std::size_t Capacity) = 0;

  /// Dispatch-time decision: shed \p R instead of serving it at \p Now?
  virtual bool shedAtDispatch(const ServeRequest &R, sim::SimTime Now) {
    (void)R;
    (void)Now;
    return false;
  }
};

/// Baseline: admit while the queue has room, serve everything admitted.
class DropTailAdmission : public AdmissionPolicy {
public:
  const char *policyName() const override { return "drop-tail"; }
  bool admit(const ServeRequest &, std::size_t QueueDepth,
             std::size_t Capacity) override {
    return QueueDepth < Capacity;
  }
};

/// Drop-tail at arrival plus deadline-aware early drop at dispatch: a
/// request whose queue wait already exceeds \p MaxQueueWait is shed
/// rather than served — under overload this spends capacity on requests
/// that can still meet their SLO.
class DeadlineEarlyDrop : public AdmissionPolicy {
public:
  explicit DeadlineEarlyDrop(sim::SimTime MaxQueueWait)
      : MaxQueueWait(MaxQueueWait) {}

  const char *policyName() const override { return "deadline-early-drop"; }
  bool admit(const ServeRequest &, std::size_t QueueDepth,
             std::size_t Capacity) override {
    return QueueDepth < Capacity;
  }
  bool shedAtDispatch(const ServeRequest &R, sim::SimTime Now) override {
    return Now - R.ArrivedAt > MaxQueueWait;
  }

private:
  sim::SimTime MaxQueueWait;
};

} // namespace parcae::serve

#endif // PARCAE_SERVE_ADMISSION_H
