//===- Admission.cpp - Admission control for the serving layer -------------===//

#include "serve/Admission.h"

using namespace parcae::serve;

AdmissionPolicy::~AdmissionPolicy() = default;
