//===- Snapshot.h - Serializable region checkpoints -------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region checkpoint format: everything needed to tear a quiesced
/// flexible region down and resume it elsewhere — a different core set,
/// a different simulated machine — with no re-measurement and no loss or
/// duplication of retired work.
///
/// A snapshot captures four things:
///
///  * the *work cursor*: the sequence number the next execution starts
///    at (== the commit frontier == iterations retired at the quiesced
///    point, the exactly-once anchor);
///  * the *work-source state*: a counted source's cursor, or a bounded
///    queue's unpulled tail (core/WorkSource.h's WorkSourceState);
///  * the *enforced configuration*: scheme plus the per-task width
///    (DoP) schedule the region was running under;
///  * the *learned controller state*: the sequential baseline, the best
///    configuration found, the per-budget config cache (Section 6.4.2),
///    and the chunk policy's learned K — so a restored controller seeds
///    MONITOR directly instead of re-running INIT/CALIBRATE/OPTIMIZE.
///
/// The serialized form is versioned line-oriented text; doubles use
/// %.17g so a serialize/deserialize/serialize round trip is
/// byte-identical. Queue tokens' opaque Ref payloads are not carried
/// (regions whose tokens own out-of-band state are not snapshot-safe).
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_CHECKPOINT_SNAPSHOT_H
#define PARCAE_CHECKPOINT_SNAPSHOT_H

#include "core/Region.h"
#include "core/WorkSource.h"

#include <cstdint>
#include <string>
#include <vector>

namespace parcae::ckpt {

/// The controller's transferable memory: what a restored controller
/// needs to skip re-measurement (morta/Controller.h exports/imports it).
struct ControllerMemory {
  double SeqThroughput = 0.0; ///< INIT baseline (Tseq)
  rt::RegionConfig Best;      ///< best configuration found so far
  double BestThr = 0.0;
  struct CacheEntry {
    unsigned Budget = 0;
    rt::RegionConfig C;
    double Thr = 0.0;
    bool Limited = false;
  };
  std::vector<CacheEntry> Cache; ///< per-budget cache (Section 6.4.2)
};

/// A quiesced region, ready to resume elsewhere.
struct RegionSnapshot {
  static constexpr unsigned CurrentVersion = 1;

  unsigned Version = CurrentVersion;
  std::string Region;        ///< FlexibleRegion name (sanity check only)
  std::uint64_t Cursor = 0;  ///< next sequence number to execute
  std::uint64_t Retired = 0; ///< iterations retired (== Cursor when quiesced)
  std::uint64_t ChunkK = 1;  ///< chunk policy K to re-seed
  rt::RegionConfig Config;   ///< enforced scheme + width schedule
  rt::WorkSourceState Source;
  ControllerMemory Ctrl;

  /// Versioned, line-oriented text; byte-stable across round trips.
  std::string serialize() const;

  /// Parses \p Text into \p Out. Returns false (leaving \p Out
  /// unspecified) on an unknown version, truncation, or malformed data.
  static bool deserialize(const std::string &Text, RegionSnapshot &Out);
};

} // namespace parcae::ckpt

#endif // PARCAE_CHECKPOINT_SNAPSHOT_H
