//===- Snapshot.cpp - Serializable region checkpoints ----------------------===//

#include "checkpoint/Snapshot.h"

#include <cstdio>
#include <sstream>

using namespace parcae;
using namespace parcae::ckpt;

namespace {

void emitDouble(std::string &S, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  S += Buf;
}

void emitConfig(std::string &S, const rt::RegionConfig &C) {
  S += std::to_string(static_cast<int>(C.S));
  S += ' ';
  S += std::to_string(C.DoP.size());
  for (unsigned D : C.DoP) {
    S += ' ';
    S += std::to_string(D);
  }
}

/// Pull-parser over the serialized lines.
class Reader {
public:
  explicit Reader(const std::string &Text) : In(Text) {}

  /// Reads one line and checks its leading keyword; the rest stays in
  /// Line for the field parsers below.
  bool expect(const char *Key) {
    if (!std::getline(In, Buf))
      return false;
    Line.clear();
    Line.str(Buf);
    std::string K;
    return (Line >> K) && K == Key;
  }

  bool u64(std::uint64_t &V) { return static_cast<bool>(Line >> V); }
  bool u32(unsigned &V) { return static_cast<bool>(Line >> V); }
  bool i64(std::int64_t &V) { return static_cast<bool>(Line >> V); }
  bool dbl(double &V) { return static_cast<bool>(Line >> V); }
  bool word(std::string &V) { return static_cast<bool>(Line >> V); }

  bool config(rt::RegionConfig &C) {
    int S = 0;
    std::size_t N = 0;
    if (!(Line >> S >> N))
      return false;
    if (S < 0 || S > static_cast<int>(rt::Scheme::Fused) || N > 4096)
      return false;
    C.S = static_cast<rt::Scheme>(S);
    C.DoP.assign(N, 0);
    for (std::size_t I = 0; I < N; ++I)
      if (!(Line >> C.DoP[I]) || C.DoP[I] == 0)
        return false;
    return true;
  }

private:
  std::istringstream In;
  std::istringstream Line;
  std::string Buf;
};

} // namespace

std::string RegionSnapshot::serialize() const {
  std::string S;
  S += "parcae-region-snapshot v" + std::to_string(Version) + "\n";
  S += "region " + Region + "\n";
  S += "cursor " + std::to_string(Cursor) + "\n";
  S += "retired " + std::to_string(Retired) + "\n";
  S += "chunk_k " + std::to_string(ChunkK) + "\n";
  S += "config ";
  emitConfig(S, Config);
  S += "\n";

  S += "tseq ";
  emitDouble(S, Ctrl.SeqThroughput);
  S += "\nbest ";
  emitDouble(S, Ctrl.BestThr);
  S += ' ';
  emitConfig(S, Ctrl.Best);
  S += "\ncache " + std::to_string(Ctrl.Cache.size()) + "\n";
  for (const ControllerMemory::CacheEntry &E : Ctrl.Cache) {
    S += "cache_entry " + std::to_string(E.Budget) + ' ';
    emitDouble(S, E.Thr);
    S += ' ';
    S += E.Limited ? '1' : '0';
    S += ' ';
    emitConfig(S, E.C);
    S += "\n";
  }

  if (Source.K == rt::WorkSourceState::Kind::Counted) {
    S += "source counted " + std::to_string(Source.Total) + ' ' +
         std::to_string(Source.Cursor) + "\n";
  } else {
    S += "source queue " + std::string(Source.Closed ? "1" : "0") + ' ' +
         std::to_string(Source.Total) + ' ' + std::to_string(Source.Cursor) +
         ' ' + std::to_string(Source.Pending.size()) + "\n";
    for (const rt::Token &T : Source.Pending)
      S += "pending " + std::to_string(T.Seq) + ' ' + std::to_string(T.Value) +
           ' ' + std::to_string(T.Work) + "\n";
  }
  S += "end\n";
  return S;
}

bool RegionSnapshot::deserialize(const std::string &Text, RegionSnapshot &Out) {
  Reader R(Text);
  std::string V;
  if (!R.expect("parcae-region-snapshot") || !R.word(V))
    return false;
  if (V != "v" + std::to_string(CurrentVersion))
    return false;
  Out = RegionSnapshot{};

  if (!R.expect("region") || !R.word(Out.Region))
    return false;
  if (!R.expect("cursor") || !R.u64(Out.Cursor))
    return false;
  if (!R.expect("retired") || !R.u64(Out.Retired))
    return false;
  if (!R.expect("chunk_k") || !R.u64(Out.ChunkK) || Out.ChunkK == 0)
    return false;
  if (!R.expect("config") || !R.config(Out.Config))
    return false;

  if (!R.expect("tseq") || !R.dbl(Out.Ctrl.SeqThroughput))
    return false;
  if (!R.expect("best") || !R.dbl(Out.Ctrl.BestThr) ||
      !R.config(Out.Ctrl.Best))
    return false;
  std::uint64_t NumCache = 0;
  if (!R.expect("cache") || !R.u64(NumCache))
    return false;
  if (NumCache > 65536)
    return false;
  Out.Ctrl.Cache.resize(NumCache);
  for (ControllerMemory::CacheEntry &E : Out.Ctrl.Cache) {
    unsigned Lim = 0;
    if (!R.expect("cache_entry") || !R.u32(E.Budget) || !R.dbl(E.Thr) ||
        !R.u32(Lim) || !R.config(E.C))
      return false;
    E.Limited = Lim != 0;
  }

  std::string Kind;
  if (!R.expect("source") || !R.word(Kind))
    return false;
  if (Kind == "counted") {
    Out.Source.K = rt::WorkSourceState::Kind::Counted;
    if (!R.u64(Out.Source.Total) || !R.u64(Out.Source.Cursor))
      return false;
  } else if (Kind == "queue") {
    Out.Source.K = rt::WorkSourceState::Kind::Queue;
    unsigned Closed = 0;
    std::uint64_t NumPending = 0;
    if (!R.u32(Closed) || !R.u64(Out.Source.Total) ||
        !R.u64(Out.Source.Cursor) || !R.u64(NumPending))
      return false;
    if (NumPending > (1u << 24))
      return false;
    Out.Source.Closed = Closed != 0;
    Out.Source.Pending.resize(NumPending);
    for (rt::Token &T : Out.Source.Pending) {
      std::uint64_t Work = 0;
      if (!R.expect("pending") || !R.u64(T.Seq) || !R.i64(T.Value) ||
          !R.u64(Work))
        return false;
      T.Work = Work;
    }
  } else {
    return false;
  }
  return R.expect("end");
}
