//===- PDG.h - Program dependence graph -------------------------*- C++ -*-===//
//
// Part of the Parcae reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program dependence graph of Section 4.1: nodes are the loop's
/// instructions, edges are register data dependencies (SSA def-use plus
/// loop-carried flows through header phis), memory data dependencies
/// (from a simple alias oracle over abstract memory objects), and control
/// dependencies (post-dominance based, plus the loop-carried control
/// dependence of the backedge branch over every instruction of the next
/// iteration).
///
/// Relaxations (Section 4.1): induction variables and min/max/sum
/// reductions are recognized and their carried edges marked removable via
/// privatization; commutativity annotations mark carried edges removable
/// via synchronization. Tarjan's SCC over the non-removable edges yields
/// the DAG_SCC that the DOANY and PS-DSWP transforms consume.
///
//===----------------------------------------------------------------------===//

#ifndef PARCAE_PDG_PDG_H
#define PARCAE_PDG_PDG_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace parcae::ir {

enum class DepKind { Reg, Mem, Control };

/// How a dependence edge may be relaxed.
enum class Relax {
  None,       ///< hard dependence
  Induction,  ///< IV recurrence: every thread recomputes from the
              ///< iteration index
  Reduction,  ///< min/max/sum: privatize-and-merge (Section 7.4)
  Commutative ///< commutativity annotation: critical section
};

struct PDGEdge {
  unsigned From = 0; ///< instruction id
  unsigned To = 0;
  DepKind Kind = DepKind::Reg;
  bool LoopCarried = false;
  Relax Relaxation = Relax::None;

  bool removable() const { return Relaxation != Relax::None; }
};

/// Alias classes for abstract memory objects.
enum class MemClass {
  Shared,           ///< conservative: all accesses conflict
  ReadOnly,         ///< never written inside the loop
  IterationPrivate  ///< disjoint per iteration (e.g. out[i])
};

/// Trivial alias analysis over abstract memory objects.
class AliasOracle {
public:
  void setClass(int MemObject, MemClass C) { Classes[MemObject] = C; }
  MemClass classOf(int MemObject) const {
    auto It = Classes.find(MemObject);
    return It == Classes.end() ? MemClass::Shared : It->second;
  }

private:
  std::map<int, MemClass> Classes;
};

/// A recognized recurrence through a loop-header phi.
struct RecurrenceInfo {
  unsigned PhiId = 0;
  unsigned UpdateId = 0;
  Opcode Kind = Opcode::Add;
  /// Induction: the non-phi operand is loop-invariant, so every worker
  /// recomputes the value from the iteration index.
  bool IsInduction = false;
  /// For inductions: the loop-invariant step value.
  ValueId StepValue = NoValue;
};

/// The PDG plus its SCC condensation.
class PDG {
public:
  PDG(const Function &F, const AliasOracle &AA);

  const std::vector<const Instruction *> &nodes() const { return Nodes; }
  const std::vector<PDGEdge> &edges() const { return Edges; }
  const std::vector<RecurrenceInfo> &recurrences() const {
    return Recurrences;
  }

  /// Recognized recurrence for a phi, if any.
  const RecurrenceInfo *recurrenceFor(unsigned PhiId) const;

  /// Non-removable loop-carried edges (the parallelism inhibitors Nona
  /// reports to the programmer, Section 3.2).
  std::vector<PDGEdge> inhibitors() const;

  // --- SCC condensation over the non-removable edges -----------------

  struct SCC {
    std::vector<unsigned> InstIds;
    /// Has an internal non-removable loop-carried dependence (must run
    /// sequentially).
    bool Sequential = false;
    /// Estimated cycles per iteration.
    double Weight = 0;
  };

  const std::vector<SCC> &sccs() const { return Sccs; }
  /// DAG edges between SCCs (indices into sccs()), deduplicated.
  const std::vector<std::pair<unsigned, unsigned>> &sccEdges() const {
    return SccEdges;
  }
  unsigned sccOf(unsigned InstId) const;

private:
  void buildRegisterDeps(const Function &F);
  void buildMemoryDeps(const Function &F, const AliasOracle &AA);
  void buildControlDeps(const Function &F);
  void recognizeRecurrences(const Function &F);
  void condense();

  std::vector<const Instruction *> Nodes;
  std::map<unsigned, unsigned> NodeIndex; ///< inst id -> Nodes index
  std::vector<PDGEdge> Edges;
  std::vector<RecurrenceInfo> Recurrences;
  std::vector<SCC> Sccs;
  std::vector<std::pair<unsigned, unsigned>> SccEdges;
  std::map<unsigned, unsigned> SccIndex; ///< inst id -> scc index
};

} // namespace parcae::ir

#endif // PARCAE_PDG_PDG_H
