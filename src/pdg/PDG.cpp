//===- PDG.cpp - Program dependence graph ------------------------------------===//

#include "pdg/PDG.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace parcae::ir;

namespace {

/// Whether the instruction participates in memory dependence analysis.
/// Calls with a memory object model external side effects (e.g. rand()'s
/// hidden state) as a read-modify-write of that object.
bool accessesMemory(const Instruction &I) {
  if (I.Op == Opcode::Load || I.Op == Opcode::Store)
    return true;
  return I.Op == Opcode::Call && I.MemObject >= 0;
}

bool writesObject(const Instruction &I) {
  return I.Op == Opcode::Store ||
         (I.Op == Opcode::Call && I.MemObject >= 0);
}

} // namespace

PDG::PDG(const Function &F, const AliasOracle &AA) {
  for (const BasicBlock *B : F.TheLoop.Blocks)
    for (const auto &I : B->Insts) {
      NodeIndex[I->Id] = static_cast<unsigned>(Nodes.size());
      Nodes.push_back(I.get());
    }
  recognizeRecurrences(F);
  buildRegisterDeps(F);
  buildMemoryDeps(F, AA);
  buildControlDeps(F);
  condense();
}

const RecurrenceInfo *PDG::recurrenceFor(unsigned PhiId) const {
  for (const RecurrenceInfo &R : Recurrences)
    if (R.PhiId == PhiId)
      return &R;
  return nullptr;
}

void PDG::recognizeRecurrences(const Function &F) {
  const Loop &L = F.TheLoop;
  for (const auto &I : L.Header->Insts) {
    if (!I->isPhi())
      continue;
    ValueId Carried = I->Uses[1];
    // Find the in-loop definition of the carried value.
    const Instruction *Update = nullptr;
    for (const Instruction *N : Nodes)
      if (N->Def == Carried)
        Update = N;
    if (!Update)
      continue;
    bool IsRecOp = Update->Op == Opcode::Add || Update->Op == Opcode::Min ||
                   Update->Op == Opcode::Max;
    if (!IsRecOp || Update->Uses.size() != 2)
      continue;
    // One operand must be the phi itself.
    ValueId Other = NoValue;
    if (Update->Uses[0] == I->Def)
      Other = Update->Uses[1];
    else if (Update->Uses[1] == I->Def)
      Other = Update->Uses[0];
    if (Other == NoValue)
      continue;
    // The other operand: loop-invariant (defined outside the loop, e.g.
    // in the preheader) makes this an induction whose per-iteration value
    // any worker can recompute; an in-loop operand makes it a candidate
    // reduction, which is only relaxable if the phi is never observed
    // except through its own update.
    const Instruction *OtherDef = nullptr;
    for (const Instruction *N : Nodes)
      if (N->Def == Other)
        OtherDef = N;
    bool LoopInvariantStep = OtherDef == nullptr;
    bool IsInduction = LoopInvariantStep && Update->Op == Opcode::Add;
    if (!IsInduction) {
      unsigned LoopUses = 0;
      for (const Instruction *N : Nodes)
        for (ValueId U : N->Uses)
          if (U == I->Def)
            ++LoopUses;
      if (LoopUses != 1)
        continue; // observed mid-loop: not a relaxable reduction
    }
    RecurrenceInfo R;
    R.PhiId = I->Id;
    R.UpdateId = Update->Id;
    R.Kind = Update->Op;
    R.IsInduction = IsInduction;
    R.StepValue = IsInduction ? Other : NoValue;
    Recurrences.push_back(R);
  }
}

void PDG::buildRegisterDeps(const Function &F) {
  (void)F;
  // In-loop definitions.
  std::map<ValueId, const Instruction *> Defs;
  for (const Instruction *N : Nodes)
    if (N->Def != NoValue)
      Defs[N->Def] = N;

  auto RelaxOf = [&](unsigned FromId, unsigned ToId) -> Relax {
    // The phi<->update cycle of a recognized recurrence is removable.
    for (const RecurrenceInfo &R : Recurrences) {
      bool Cycle = (FromId == R.UpdateId && ToId == R.PhiId) ||
                   (FromId == R.PhiId && ToId == R.UpdateId);
      if (Cycle)
        return R.IsInduction ? Relax::Induction : Relax::Reduction;
    }
    return Relax::None;
  };

  for (const Instruction *N : Nodes) {
    if (N->isPhi()) {
      // Loop-carried register flow: in-loop def of the carried operand.
      auto It = Defs.find(N->Uses[1]);
      if (It != Defs.end())
        Edges.push_back({It->second->Id, N->Id, DepKind::Reg,
                         /*LoopCarried=*/true,
                         RelaxOf(It->second->Id, N->Id)});
      continue;
    }
    for (ValueId U : N->Uses) {
      auto It = Defs.find(U);
      if (It == Defs.end())
        continue; // live-in from the preheader (Tinit reloads it)
      Edges.push_back({It->second->Id, N->Id, DepKind::Reg,
                       /*LoopCarried=*/false, RelaxOf(It->second->Id, N->Id)});
    }
  }
}

void PDG::buildMemoryDeps(const Function &F, const AliasOracle &AA) {
  (void)F;
  std::vector<const Instruction *> Accesses;
  for (const Instruction *N : Nodes)
    if (accessesMemory(*N))
      Accesses.push_back(N);

  // Program order within one iteration follows Nodes order (loop blocks
  // are stored in RPO and instructions in block order).
  auto OrderOf = [&](const Instruction *I) { return NodeIndex.at(I->Id); };

  for (const Instruction *A : Accesses) {
    for (const Instruction *B : Accesses) {
      if (A->MemObject != B->MemObject)
        continue;
      MemClass C = AA.classOf(A->MemObject);
      if (C == MemClass::ReadOnly)
        continue;
      bool Conflict = writesObject(*A) || writesObject(*B);
      if (!Conflict)
        continue;
      bool BothCommutative = A->Commutative && B->Commutative;
      Relax R = BothCommutative ? Relax::Commutative : Relax::None;
      if (A != B && OrderOf(A) < OrderOf(B)) {
        if (BothCommutative) {
          // A commutative group is an atomic unit: its instances may be
          // reordered across iterations, but one iteration's accesses
          // must stay together (they become one critical section). Hard
          // intra edges in both directions force them into one SCC and
          // hence one task.
          Edges.push_back({A->Id, B->Id, DepKind::Mem, false, Relax::None});
          Edges.push_back({B->Id, A->Id, DepKind::Mem, false, Relax::None});
        } else {
          // Intra-iteration dependence in program order.
          Edges.push_back({A->Id, B->Id, DepKind::Mem, false, R});
        }
      }
      if (C == MemClass::IterationPrivate)
        continue; // different iterations touch disjoint locations
      // Loop-carried (including self-dependences A == B).
      Edges.push_back({A->Id, B->Id, DepKind::Mem, true, R});
    }
  }
}

void PDG::buildControlDeps(const Function &F) {
  const Loop &L = F.TheLoop;
  // Root post-dominance at the function's sink block.
  const BasicBlock *Sink = nullptr;
  for (const auto &B : F.blocks())
    if (B->Succs.empty())
      Sink = B.get();
  assert(Sink && "function needs a sink block");
  PostDominators PD(F, Sink);

  // Intra-iteration control dependence from in-loop conditional branches
  // (other than the backedge branch, handled below).
  for (const BasicBlock *A : L.Blocks) {
    if (A->Succs.size() < 2 || A == L.Tail)
      continue;
    const Instruction *Term = A->terminator();
    for (const BasicBlock *B : PD.controlDependents(A)) {
      if (!L.contains(B))
        continue;
      for (const auto &I : B->Insts)
        Edges.push_back({Term->Id, I->Id, DepKind::Control, false,
                         Relax::None});
    }
  }

  // Loop-carried control dependence: the backedge branch decides whether
  // iteration i+1 executes at all.
  const Instruction *Back = L.Tail->terminator();
  assert(Back->Op == Opcode::CondBr && "tail must end in the exit branch");

  // A counted loop's exit condition is an induction comparison; every
  // worker can recompute "does iteration i exist", so the carried control
  // edges are removable (this is how DOANY/parallel stages can claim
  // iterations independently).
  bool Counted = false;
  if (!Back->Uses.empty()) {
    for (const Instruction *N : Nodes) {
      if (N->Def != Back->Uses[0] || N->Op != Opcode::CmpLt)
        continue;
      // One comparison operand derived from an induction recurrence, the
      // other loop-invariant.
      for (ValueId U : N->Uses) {
        for (const RecurrenceInfo &R : Recurrences) {
          if (!R.IsInduction)
            continue;
          const Instruction *Phi = nullptr, *Upd = nullptr;
          for (const Instruction *M : Nodes) {
            if (M->Id == R.PhiId)
              Phi = M;
            if (M->Id == R.UpdateId)
              Upd = M;
          }
          if ((Phi && Phi->Def == U) || (Upd && Upd->Def == U))
            Counted = true;
        }
      }
    }
  }

  for (const Instruction *N : Nodes) {
    if (N == Back)
      continue;
    Edges.push_back({Back->Id, N->Id, DepKind::Control, true,
                     Counted ? Relax::Induction : Relax::None});
  }
}

std::vector<PDGEdge> PDG::inhibitors() const {
  std::vector<PDGEdge> Out;
  for (const PDGEdge &E : Edges)
    if (E.LoopCarried && !E.removable())
      Out.push_back(E);
  return Out;
}

void PDG::condense() {
  // Adjacency over non-removable edges.
  unsigned N = static_cast<unsigned>(Nodes.size());
  std::vector<std::vector<unsigned>> Adj(N);
  for (const PDGEdge &E : Edges) {
    if (E.removable())
      continue;
    Adj[NodeIndex.at(E.From)].push_back(NodeIndex.at(E.To));
  }

  // Tarjan (iterative).
  std::vector<int> Index(N, -1), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  int NextIndex = 0;
  std::vector<std::vector<unsigned>> Components;

  std::function<void(unsigned)> Strongconnect = [&](unsigned V) {
    Index[V] = Low[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (unsigned W : Adj[V]) {
      if (Index[W] < 0) {
        Strongconnect(W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      std::vector<unsigned> Comp;
      unsigned W;
      do {
        W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        Comp.push_back(W);
      } while (W != V);
      Components.push_back(std::move(Comp));
    }
  };
  for (unsigned V = 0; V < N; ++V)
    if (Index[V] < 0)
      Strongconnect(V);

  // Tarjan emits components in reverse topological order; flip so stage 0
  // is upstream.
  std::reverse(Components.begin(), Components.end());

  std::vector<unsigned> CompOf(N, 0);
  for (unsigned C = 0; C < Components.size(); ++C)
    for (unsigned V : Components[C])
      CompOf[V] = C;

  Sccs.clear();
  for (unsigned C = 0; C < Components.size(); ++C) {
    SCC S;
    for (unsigned V : Components[C]) {
      S.InstIds.push_back(Nodes[V]->Id);
      S.Weight += static_cast<double>(Nodes[V]->Latency) *
                  Nodes[V]->ProfileWeight;
      SccIndex[Nodes[V]->Id] = C;
    }
    std::sort(S.InstIds.begin(), S.InstIds.end());
    Sccs.push_back(std::move(S));
  }

  // Sequential SCCs: an internal non-removable carried edge.
  for (const PDGEdge &E : Edges) {
    if (E.removable() || !E.LoopCarried)
      continue;
    unsigned A = SccIndex.at(E.From), B = SccIndex.at(E.To);
    if (A == B)
      Sccs[A].Sequential = true;
  }

  // Condensation edges (deduplicated).
  for (const PDGEdge &E : Edges) {
    if (E.removable())
      continue;
    unsigned A = SccIndex.at(E.From), B = SccIndex.at(E.To);
    if (A == B)
      continue;
    assert(A < B && "condensation must be topologically ordered");
    auto P = std::make_pair(A, B);
    if (std::find(SccEdges.begin(), SccEdges.end(), P) == SccEdges.end())
      SccEdges.push_back(P);
  }
  std::sort(SccEdges.begin(), SccEdges.end());
}

unsigned PDG::sccOf(unsigned InstId) const { return SccIndex.at(InstId); }
