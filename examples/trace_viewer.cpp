//===- trace_viewer.cpp - Record a Chrome trace of an adaptive run ------------===//
//
// Runs a deliberately eventful controlled execution — a Nona-compiled
// Monte Carlo loop whose workload quadruples mid-run and whose thread
// budget is later cut — with telemetry enabled, and writes a Chrome
// trace-event JSON file.
//
// Open the output in https://ui.perfetto.dev (or chrome://tracing): one
// track per simulated core shows the busy spans, the controller track
// shows the INIT/CALIBRATE/OPTIMIZE/MONITOR state machine with DoP-move
// instants, and the decima track plots SystemPower as a counter series.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/example_trace_viewer --trace out.trace.json
// Flags: --trace <file.json>  output path (default out.trace.json)
//        --check              re-read and validate the written JSON
//
//===----------------------------------------------------------------------===//

#include "decima/Monitor.h"
#include "morta/Controller.h"
#include "nona/Programs.h"
#include "nona/Run.h"
#include "sim/Power.h"
#include "telemetry/ChromeTrace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;
namespace telemetry = parcae::telemetry;

int main(int argc, char **argv) {
  const char *Path = telemetry::traceFlagPath(argc, argv);
  if (!Path)
    Path = "out.trace.json";
  bool Check = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--check") == 0)
      Check = true;

  {
    telemetry::TraceFile Trace(Path);

    LoopProgram P = makeMonteCarlo(2000000);
    CompiledLoop CL(*P.F, P.AA, P.TripCount);
    CL.resetState();
    sim::Simulator Sim;
    sim::Machine M(Sim, 16);
    rt::RuntimeCosts Costs;
    auto Src = CL.makeSource();
    rt::RegionRunner Runner(M, Costs, CL.region(), *Src);
    rt::RegionController Ctrl(Runner);

    // Platform features: a real power meter behind "SystemPower", plus a
    // sampler that also probes "Temperature" — unregistered here, so the
    // sampler's tryGetValue probe skips it (no sensor on this machine).
    sim::EnergyMeter Meter(M, sim::PowerModel{});
    rt::Decima D;
    D.registerFeature("SystemPower",
                      [&Meter] { return Meter.currentWatts(); });
    rt::FeatureSampler Sampler(Sim, D, {"SystemPower", "Temperature"},
                               250 * sim::USec);
    Sampler.start();

    Ctrl.start(16);
    // Make the run eventful: quadruple the per-iteration work at 120 ms
    // (MONITOR re-calibrates), then cut the thread budget at 250 ms.
    Sim.schedule(120 * sim::MSec, [&CL] { CL.setWorkScale(4.0); });
    Sim.schedule(250 * sim::MSec, [&Ctrl] { Ctrl.setThreadBudget(5); });
    Sim.runUntil(400 * sim::MSec);
    Sampler.stop();

    std::printf("trace_viewer: controller ended in %s, config %s\n",
                rt::ctrlStateName(Ctrl.state()),
                Runner.config().str().c_str());
    std::printf("  reconfigurations: %u (%u full pauses)\n",
                Runner.reconfigurations(), Runner.fullPauses());
    std::printf("  feature samples : %llu\n",
                static_cast<unsigned long long>(Sampler.samplesTaken()));
    if (Trace.recorder() && !Trace.recorder()->metrics().empty()) {
      std::printf("\n%s", Trace.recorder()
                              ->metrics()
                              .snapshot(Sim.now())
                              .text()
                              .c_str());
    }
  } // TraceFile writes the JSON here.

  if (Check) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "trace_viewer: cannot reopen %s\n", Path);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Err;
    if (!telemetry::validateChromeTrace(Buf.str(), &Err)) {
      std::fprintf(stderr, "trace_viewer: invalid trace: %s\n", Err.c_str());
      return 1;
    }
    std::printf("trace_viewer: %s validates as Chrome trace JSON\n", Path);
  }
  return 0;
}
