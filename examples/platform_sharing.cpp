//===- platform_sharing.cpp - Two programs sharing a machine ------------------===//
//
// The platform-wide execution model of Chapter 3 (Figure 3.1): program P1
// runs alone on the whole machine; P2 launches mid-run; the Morta daemon
// re-partitions the hardware threads and both programs adapt — P1's
// controller shrinks its configuration instead of oversubscribing, and
// when P2's own optimum turns out to need fewer threads than its share,
// the daemon hands the slack back (Algorithm 5).
//
// Run: ./build/examples/example_platform_sharing
//
//===----------------------------------------------------------------------===//

#include "morta/Platform.h"
#include "nona/Programs.h"
#include "nona/Run.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

int main() {
  sim::Simulator Sim;
  sim::Machine M(Sim, 16);
  rt::RuntimeCosts Costs;

  // P1: scalable Monte-Carlo pricing. P2: histogram, whose critical
  // section caps its useful parallelism at a handful of threads.
  LoopProgram P1 = makeMonteCarlo(3000000);
  LoopProgram P2 = makeHistogram(3000000, 64);
  CompiledLoop C1(*P1.F, P1.AA, P1.TripCount);
  CompiledLoop C2(*P2.F, P2.AA, P2.TripCount);
  C1.resetState();
  C2.resetState();
  auto S1 = C1.makeSource();
  auto S2 = C2.makeSource();
  rt::RegionRunner R1(M, Costs, C1.region(), *S1);
  rt::RegionRunner R2(M, Costs, C2.region(), *S2);
  rt::RegionController Ctl1(R1), Ctl2(R2);
  rt::PlatformDaemon Daemon(16);

  Daemon.addProgram(Ctl1);
  std::printf("t=0      P1 (montecarlo) launches: budget %u\n",
              Daemon.budgetOf(Ctl1));
  Sim.runUntil(80 * sim::MSec);
  std::printf("t=80ms   P1 settled on %s\n", R1.config().str().c_str());

  Daemon.addProgram(Ctl2);
  std::printf("t=80ms   P2 (histogram) launches: budgets %u / %u\n",
              Daemon.budgetOf(Ctl1), Daemon.budgetOf(Ctl2));

  for (int Ms = 160; Ms <= 640; Ms += 160) {
    Sim.runUntil(static_cast<sim::SimTime>(Ms) * sim::MSec);
    std::printf("t=%-3dms  P1 %s (budget %u) | P2 %s (budget %u) | %u/16"
                " cores busy\n",
                Ms, R1.config().str().c_str(), Daemon.budgetOf(Ctl1),
                R2.config().str().c_str(), Daemon.budgetOf(Ctl2),
                M.busyCores());
  }
  std::printf("\nP2 saturates early (hash-bin critical section); the"
              " daemon reclaims its slack for P1.\n");
  return 0;
}
