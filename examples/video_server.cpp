//===- video_server.cpp - The Chapter 2 video transcoding server --------------===//
//
// The motivating application of the paper: a transcoding server with a
// two-level loop nest — an outer DOALL loop over submitted videos and an
// inner pipeline per video. Requests arrive as a Poisson process; the
// WQ-Linear mechanism continuously trades inner parallelism (latency) for
// outer parallelism (throughput) as the work-queue occupancy changes.
//
// Run: ./build/examples/example_video_server [load-factor]
//
//===----------------------------------------------------------------------===//

#include "mechanisms/LaneMechanisms.h"
#include "workloads/Experiment.h"

#include <cstdio>
#include <cstdlib>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

int main(int argc, char **argv) {
  double Load = argc > 1 ? std::atof(argv[1]) : 0.8;
  if (Load <= 0 || Load > 2.0) {
    std::fprintf(stderr, "usage: %s [load-factor in (0, 2]]\n", argv[0]);
    return 1;
  }

  LaneAppParams P = x264Params();
  unsigned DPmax = P.Scal.dPmax();
  std::printf("video transcoding server on 24 cores\n");
  std::printf("  one video: %.0f s sequential, %.1f s with the inner"
              " pipeline at DoP %u (S(%u) = %.2f)\n",
              sim::toSeconds(P.MeanWork),
              sim::toSeconds(P.MeanWork) / P.Scal.speedup(DPmax), DPmax,
              DPmax, P.Scal.speedup(DPmax));
  std::printf("  load factor %.2f of the maximum sustainable %.2f"
              " videos/s\n\n",
              Load, laneMaxThroughput(P, 24));

  // The three deployments of Chapter 2: latency-tuned, throughput-tuned,
  // and the flexible one (WQ-Linear).
  StaticLane Latency({24 / DPmax, true, DPmax});
  StaticLane Throughput({24, false, 1});
  WqLinear Flexible(24, DPmax, P.Scal.dPmin(), 4.0 * (24 / DPmax));

  struct {
    const char *Name;
    LaneMechanism *M;
  } Runs[] = {{"latency-tuned static", &Latency},
              {"throughput-tuned static", &Throughput},
              {"Parcae WQ-Linear", &Flexible}};

  for (auto &R : Runs) {
    ServerRunResult Out = runLaneExperiment(P, *R.M, 24, Load, 300);
    std::printf("%-24s mean response %6.2f s   p95 %6.2f s   (%u"
                " reconfigurations)\n",
                R.Name, Out.MeanResponseSec, Out.Resp.p95ResponseSec(),
                Out.Reconfigurations);
  }
  std::printf("\nTry load factors 0.3 and 1.1: the better static flips,"
              " while WQ-Linear tracks both.\n");
  return 0;
}
