//===- quickstart.cpp - Parcae in five minutes --------------------------------===//
//
// The smallest end-to-end Parcae program:
//
//  1. describe a parallel region with the task API (a 3-stage pipeline,
//     the Chapter 5 programming model: control and functionality
//     separated, parallelism declared but not configured),
//  2. hand it to Morta with a work source,
//  3. let the Chapter 6 run-time controller measure a sequential
//     baseline, explore the exposed parallelism, and enforce the best
//     configuration for the 8-core platform.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/example_quickstart
//
//===----------------------------------------------------------------------===//

#include "morta/Controller.h"
#include "morta/RegionRunner.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::rt;
namespace sim = parcae::sim;

int main() {
  // The simulated platform: 8 cores at 1 GHz (the host machine in a real
  // deployment).
  sim::Simulator Sim;
  sim::Machine Machine(Sim, 8);
  RuntimeCosts Costs;

  // --- 1. Describe the parallelism --------------------------------------
  // A region declares *what tasks exist* and how they connect; it does
  // not pick thread counts. Every task is a functor that fills in its
  // per-iteration cost (here: virtual cycles) and output tokens.
  FlexibleRegion Region("quickstart");
  {
    RegionDesc Pipe;
    Pipe.Name = "quickstart-pipe";
    Pipe.S = Scheme::PsDswp;
    Pipe.Tasks.emplace_back("read", TaskType::Seq, [](IterationContext &C) {
      C.Cost = 3000; // read one record
      C.Out[0].Value = static_cast<std::int64_t>(C.Seq);
    });
    Pipe.Tasks.emplace_back("transform", TaskType::Par,
                            [](IterationContext &C) {
                              C.Cost = 40000; // the heavy kernel
                              C.Out[0].Value = C.In[0].Value * 2;
                            });
    Pipe.Tasks.emplace_back("write", TaskType::Seq,
                            [](IterationContext &C) { C.Cost = 2500; });
    Pipe.Links.push_back({0, 1});
    Pipe.Links.push_back({1, 2});
    Region.addVariant(std::move(Pipe));
  }
  {
    // The sequential fallback Morta compares against (and uses when
    // parallelism is not profitable).
    RegionDesc Seq;
    Seq.Name = "quickstart-seq";
    Seq.S = Scheme::Seq;
    Seq.Tasks.emplace_back("all", TaskType::Seq,
                           [](IterationContext &C) { C.Cost = 45500; });
    Region.addVariant(std::move(Seq));
  }

  // --- 2. Give it work ---------------------------------------------------
  CountedWorkSource Work(200000);
  RegionRunner Runner(Machine, Costs, Region, Work);

  // --- 3. Let Morta run it -----------------------------------------------
  RegionController Ctrl(Runner);
  Ctrl.start(/*ThreadBudget=*/8);
  Sim.runUntil(2 * sim::Sec);

  std::printf("quickstart: controller state %s\n",
              ctrlStateName(Ctrl.state()));
  std::printf("  sequential baseline : %.0f iterations/s\n",
              Ctrl.seqThroughput());
  std::printf("  chosen configuration: %s\n", Runner.config().str().c_str());
  std::printf("  best throughput     : %.0f iterations/s (%.2fx)\n",
              Ctrl.bestThroughput(),
              Ctrl.bestThroughput() / Ctrl.seqThroughput());
  std::printf("  iterations retired  : %llu\n",
              static_cast<unsigned long long>(Runner.totalRetired()));
  return 0;
}
