//===- compile_loop.cpp - Driving the Nona compiler ---------------------------===//
//
// Builds a loop in Nona's IR, compiles it (PDG, DOANY, PS-DSWP, MTCG,
// flexible code generation), prints the compilation report and the
// parallelism-inhibiting dependencies, then executes the loop under the
// Morta run-time controller and checks the results against the
// sequential reference interpretation.
//
// Run: ./build/examples/example_compile_loop
//
//===----------------------------------------------------------------------===//

#include "nona/Programs.h"
#include "nona/Run.h"

#include <cstdio>

using namespace parcae;
using namespace parcae::ir;
namespace rt = parcae::rt;
namespace sim = parcae::sim;

int main() {
  // A Monte-Carlo pricing loop: rand() is annotated commutative (the
  // paper's canonical example), the sum is a recognized reduction.
  LoopProgram P = makeMonteCarlo(200000);
  std::printf("-- input IR --------------------------------------------\n");
  std::printf("%s\n", P.F->print().c_str());

  CompiledLoop CL(*P.F, P.AA, P.TripCount);
  std::printf("-- compilation -----------------------------------------\n");
  std::printf("%s", CL.report().c_str());
  for (const PDGEdge &E : CL.pdg().inhibitors())
    std::printf("  inhibitor: %%%u -> %%%u (%s)\n", E.From, E.To,
                E.Kind == DepKind::Mem ? "memory"
                : E.Kind == DepKind::Reg ? "register"
                                         : "control");

  std::printf("\n-- execution under the Morta controller ----------------\n");
  ControlledRunResult R = runControlled(CL, /*Budget=*/8);
  std::printf("completed: %s in %.3f s\n", R.Completed ? "yes" : "no",
              sim::toSeconds(R.Time));
  std::printf("chosen configuration: %s (%.1fx over sequential)\n",
              R.Final.str().c_str(), R.BestThroughput / R.SeqThroughput);

  // Semantics check against the reference interpreter.
  LoopProgram Ref = makeMonteCarlo(200000);
  std::map<unsigned, std::int64_t> Reds;
  Memory RefMem = CompiledLoop::interpret(*Ref.F, Ref.TripCount, &Reds);
  bool Ok = CL.memory() == RefMem;
  for (auto [Phi, Val] : Reds)
    Ok = Ok && CL.reductionValue(Phi) == Val;
  std::printf("semantics vs sequential reference: %s\n",
              Ok ? "IDENTICAL" : "MISMATCH");
  return Ok ? 0 : 1;
}
