# Empty compiler generated dependencies file for example_video_server.
# This may be replaced when dependencies are built.
