# Empty dependencies file for example_compile_loop.
# This may be replaced when dependencies are built.
