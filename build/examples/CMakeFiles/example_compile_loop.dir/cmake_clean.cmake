file(REMOVE_RECURSE
  "CMakeFiles/example_compile_loop.dir/compile_loop.cpp.o"
  "CMakeFiles/example_compile_loop.dir/compile_loop.cpp.o.d"
  "example_compile_loop"
  "example_compile_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compile_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
