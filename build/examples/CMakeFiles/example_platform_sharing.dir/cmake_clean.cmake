file(REMOVE_RECURSE
  "CMakeFiles/example_platform_sharing.dir/platform_sharing.cpp.o"
  "CMakeFiles/example_platform_sharing.dir/platform_sharing.cpp.o.d"
  "example_platform_sharing"
  "example_platform_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_platform_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
