# Empty dependencies file for example_platform_sharing.
# This may be replaced when dependencies are built.
