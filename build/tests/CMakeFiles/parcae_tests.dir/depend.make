# Empty dependencies file for parcae_tests.
# This may be replaced when dependencies are built.
