file(REMOVE_RECURSE
  "CMakeFiles/parcae_tests.dir/ApiTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/ApiTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/AppsTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/AppsTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/CalibrationTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/CalibrationTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/ControllerTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/ControllerTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/ExecutionModelTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/ExecutionModelTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/FaultInjectionTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/FaultInjectionTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/LinkTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/LinkTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/MechanismsTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/MechanismsTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/NonaTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/NonaTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/PropertyTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/RegionExecTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/RegionExecTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/SimTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/SimTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/SupportTest.cpp.o.d"
  "CMakeFiles/parcae_tests.dir/WidthScheduleTest.cpp.o"
  "CMakeFiles/parcae_tests.dir/WidthScheduleTest.cpp.o.d"
  "parcae_tests"
  "parcae_tests.pdb"
  "parcae_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcae_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
