
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ApiTest.cpp" "tests/CMakeFiles/parcae_tests.dir/ApiTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/ApiTest.cpp.o.d"
  "/root/repo/tests/AppsTest.cpp" "tests/CMakeFiles/parcae_tests.dir/AppsTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/AppsTest.cpp.o.d"
  "/root/repo/tests/CalibrationTest.cpp" "tests/CMakeFiles/parcae_tests.dir/CalibrationTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/CalibrationTest.cpp.o.d"
  "/root/repo/tests/ControllerTest.cpp" "tests/CMakeFiles/parcae_tests.dir/ControllerTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/ControllerTest.cpp.o.d"
  "/root/repo/tests/ExecutionModelTest.cpp" "tests/CMakeFiles/parcae_tests.dir/ExecutionModelTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/ExecutionModelTest.cpp.o.d"
  "/root/repo/tests/FaultInjectionTest.cpp" "tests/CMakeFiles/parcae_tests.dir/FaultInjectionTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/FaultInjectionTest.cpp.o.d"
  "/root/repo/tests/LinkTest.cpp" "tests/CMakeFiles/parcae_tests.dir/LinkTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/LinkTest.cpp.o.d"
  "/root/repo/tests/MechanismsTest.cpp" "tests/CMakeFiles/parcae_tests.dir/MechanismsTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/MechanismsTest.cpp.o.d"
  "/root/repo/tests/NonaTest.cpp" "tests/CMakeFiles/parcae_tests.dir/NonaTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/NonaTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/parcae_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/RegionExecTest.cpp" "tests/CMakeFiles/parcae_tests.dir/RegionExecTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/RegionExecTest.cpp.o.d"
  "/root/repo/tests/SimTest.cpp" "tests/CMakeFiles/parcae_tests.dir/SimTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/SimTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/parcae_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/WidthScheduleTest.cpp" "tests/CMakeFiles/parcae_tests.dir/WidthScheduleTest.cpp.o" "gcc" "tests/CMakeFiles/parcae_tests.dir/WidthScheduleTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parcae.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
