
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/LaneApps.cpp" "src/CMakeFiles/parcae.dir/apps/LaneApps.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/apps/LaneApps.cpp.o.d"
  "/root/repo/src/apps/PipelineApps.cpp" "src/CMakeFiles/parcae.dir/apps/PipelineApps.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/apps/PipelineApps.cpp.o.d"
  "/root/repo/src/core/Api.cpp" "src/CMakeFiles/parcae.dir/core/Api.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/core/Api.cpp.o.d"
  "/root/repo/src/core/Link.cpp" "src/CMakeFiles/parcae.dir/core/Link.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/core/Link.cpp.o.d"
  "/root/repo/src/core/Region.cpp" "src/CMakeFiles/parcae.dir/core/Region.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/core/Region.cpp.o.d"
  "/root/repo/src/core/WidthSchedule.cpp" "src/CMakeFiles/parcae.dir/core/WidthSchedule.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/core/WidthSchedule.cpp.o.d"
  "/root/repo/src/core/WorkSource.cpp" "src/CMakeFiles/parcae.dir/core/WorkSource.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/core/WorkSource.cpp.o.d"
  "/root/repo/src/interp/Memory.cpp" "src/CMakeFiles/parcae.dir/interp/Memory.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/interp/Memory.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/CMakeFiles/parcae.dir/ir/Dominators.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/ir/Dominators.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/CMakeFiles/parcae.dir/ir/IR.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/ir/IR.cpp.o.d"
  "/root/repo/src/mechanisms/LaneMechanisms.cpp" "src/CMakeFiles/parcae.dir/mechanisms/LaneMechanisms.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/mechanisms/LaneMechanisms.cpp.o.d"
  "/root/repo/src/mechanisms/PipeMechanisms.cpp" "src/CMakeFiles/parcae.dir/mechanisms/PipeMechanisms.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/mechanisms/PipeMechanisms.cpp.o.d"
  "/root/repo/src/morta/Controller.cpp" "src/CMakeFiles/parcae.dir/morta/Controller.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/morta/Controller.cpp.o.d"
  "/root/repo/src/morta/Platform.cpp" "src/CMakeFiles/parcae.dir/morta/Platform.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/morta/Platform.cpp.o.d"
  "/root/repo/src/morta/RegionExec.cpp" "src/CMakeFiles/parcae.dir/morta/RegionExec.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/morta/RegionExec.cpp.o.d"
  "/root/repo/src/morta/RegionRunner.cpp" "src/CMakeFiles/parcae.dir/morta/RegionRunner.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/morta/RegionRunner.cpp.o.d"
  "/root/repo/src/morta/Worker.cpp" "src/CMakeFiles/parcae.dir/morta/Worker.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/morta/Worker.cpp.o.d"
  "/root/repo/src/nona/Compile.cpp" "src/CMakeFiles/parcae.dir/nona/Compile.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/nona/Compile.cpp.o.d"
  "/root/repo/src/nona/Programs.cpp" "src/CMakeFiles/parcae.dir/nona/Programs.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/nona/Programs.cpp.o.d"
  "/root/repo/src/nona/Run.cpp" "src/CMakeFiles/parcae.dir/nona/Run.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/nona/Run.cpp.o.d"
  "/root/repo/src/pdg/PDG.cpp" "src/CMakeFiles/parcae.dir/pdg/PDG.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/pdg/PDG.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/CMakeFiles/parcae.dir/sim/Machine.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/sim/Machine.cpp.o.d"
  "/root/repo/src/sim/Power.cpp" "src/CMakeFiles/parcae.dir/sim/Power.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/sim/Power.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/parcae.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/parcae.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/parcae.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/support/Stats.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/parcae.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/support/Table.cpp.o.d"
  "/root/repo/src/workloads/Experiment.cpp" "src/CMakeFiles/parcae.dir/workloads/Experiment.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/workloads/Experiment.cpp.o.d"
  "/root/repo/src/workloads/LoadGen.cpp" "src/CMakeFiles/parcae.dir/workloads/LoadGen.cpp.o" "gcc" "src/CMakeFiles/parcae.dir/workloads/LoadGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
