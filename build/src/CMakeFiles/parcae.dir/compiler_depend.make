# Empty compiler generated dependencies file for parcae.
# This may be replaced when dependencies are built.
