file(REMOVE_RECURSE
  "libparcae.a"
)
