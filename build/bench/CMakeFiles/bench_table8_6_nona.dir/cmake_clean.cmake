file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_6_nona.dir/bench_table8_6_nona.cpp.o"
  "CMakeFiles/bench_table8_6_nona.dir/bench_table8_6_nona.cpp.o.d"
  "bench_table8_6_nona"
  "bench_table8_6_nona.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_6_nona.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
