# Empty dependencies file for bench_table8_6_nona.
# This may be replaced when dependencies are built.
