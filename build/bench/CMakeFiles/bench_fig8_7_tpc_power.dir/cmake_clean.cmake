file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_7_tpc_power.dir/bench_fig8_7_tpc_power.cpp.o"
  "CMakeFiles/bench_fig8_7_tpc_power.dir/bench_fig8_7_tpc_power.cpp.o.d"
  "bench_fig8_7_tpc_power"
  "bench_fig8_7_tpc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_7_tpc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
