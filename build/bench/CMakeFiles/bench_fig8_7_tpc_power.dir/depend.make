# Empty dependencies file for bench_fig8_7_tpc_power.
# This may be replaced when dependencies are built.
