# Empty compiler generated dependencies file for bench_fig2_4_motivation.
# This may be replaced when dependencies are built.
