file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_4_motivation.dir/bench_fig2_4_motivation.cpp.o"
  "CMakeFiles/bench_fig2_4_motivation.dir/bench_fig2_4_motivation.cpp.o.d"
  "bench_fig2_4_motivation"
  "bench_fig2_4_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_4_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
