# Empty dependencies file for bench_fig8_1_transcode.
# This may be replaced when dependencies are built.
