file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_1_transcode.dir/bench_fig8_1_transcode.cpp.o"
  "CMakeFiles/bench_fig8_1_transcode.dir/bench_fig8_1_transcode.cpp.o.d"
  "bench_fig8_1_transcode"
  "bench_fig8_1_transcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_1_transcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
