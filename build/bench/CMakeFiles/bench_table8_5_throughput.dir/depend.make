# Empty dependencies file for bench_table8_5_throughput.
# This may be replaced when dependencies are built.
