# Empty dependencies file for bench_fig8_5_ferret.
# This may be replaced when dependencies are built.
