file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_5_ferret.dir/bench_fig8_5_ferret.cpp.o"
  "CMakeFiles/bench_fig8_5_ferret.dir/bench_fig8_5_ferret.cpp.o.d"
  "bench_fig8_5_ferret"
  "bench_fig8_5_ferret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_5_ferret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
