file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ch7.dir/bench_ablation_ch7.cpp.o"
  "CMakeFiles/bench_ablation_ch7.dir/bench_ablation_ch7.cpp.o.d"
  "bench_ablation_ch7"
  "bench_ablation_ch7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ch7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
