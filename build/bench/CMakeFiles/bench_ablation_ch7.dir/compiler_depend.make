# Empty compiler generated dependencies file for bench_ablation_ch7.
# This may be replaced when dependencies are built.
