# Empty compiler generated dependencies file for bench_fig8_2_swaptions.
# This may be replaced when dependencies are built.
