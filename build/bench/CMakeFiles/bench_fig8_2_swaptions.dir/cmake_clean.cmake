file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_2_swaptions.dir/bench_fig8_2_swaptions.cpp.o"
  "CMakeFiles/bench_fig8_2_swaptions.dir/bench_fig8_2_swaptions.cpp.o.d"
  "bench_fig8_2_swaptions"
  "bench_fig8_2_swaptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_2_swaptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
