file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_6_tbf_timeline.dir/bench_fig8_6_tbf_timeline.cpp.o"
  "CMakeFiles/bench_fig8_6_tbf_timeline.dir/bench_fig8_6_tbf_timeline.cpp.o.d"
  "bench_fig8_6_tbf_timeline"
  "bench_fig8_6_tbf_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_6_tbf_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
