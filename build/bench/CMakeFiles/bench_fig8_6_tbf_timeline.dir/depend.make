# Empty dependencies file for bench_fig8_6_tbf_timeline.
# This may be replaced when dependencies are built.
