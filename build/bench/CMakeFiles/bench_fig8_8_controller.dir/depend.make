# Empty dependencies file for bench_fig8_8_controller.
# This may be replaced when dependencies are built.
