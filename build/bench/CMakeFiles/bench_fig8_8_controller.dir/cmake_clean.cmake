file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_8_controller.dir/bench_fig8_8_controller.cpp.o"
  "CMakeFiles/bench_fig8_8_controller.dir/bench_fig8_8_controller.cpp.o.d"
  "bench_fig8_8_controller"
  "bench_fig8_8_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_8_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
