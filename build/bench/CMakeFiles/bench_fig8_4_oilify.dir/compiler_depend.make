# Empty compiler generated dependencies file for bench_fig8_4_oilify.
# This may be replaced when dependencies are built.
