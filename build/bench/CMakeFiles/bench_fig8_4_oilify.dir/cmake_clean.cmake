file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_4_oilify.dir/bench_fig8_4_oilify.cpp.o"
  "CMakeFiles/bench_fig8_4_oilify.dir/bench_fig8_4_oilify.cpp.o.d"
  "bench_fig8_4_oilify"
  "bench_fig8_4_oilify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_4_oilify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
