# Empty dependencies file for bench_fig8_3_compress.
# This may be replaced when dependencies are built.
