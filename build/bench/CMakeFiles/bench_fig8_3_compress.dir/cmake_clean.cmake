file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_3_compress.dir/bench_fig8_3_compress.cpp.o"
  "CMakeFiles/bench_fig8_3_compress.dir/bench_fig8_3_compress.cpp.o.d"
  "bench_fig8_3_compress"
  "bench_fig8_3_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_3_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
